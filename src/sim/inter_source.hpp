#pragma once
/// \file inter_source.hpp
/// Virtual-time inter-node chunk sources shared by both simulation engines.
///
/// InterSource is the level-1 counterpart of the real executors'
/// WorkSource: one `acquire()` performs a complete level-1 acquisition in
/// virtual time, including the RMA pricing, so both engines charge
/// identical costs for every backend. Two implementations mirror the real
/// queues:
///
///  * CentralizedInterSource — the rank-0-hosted queues. Each acquisition
///    is two RMA-priced atomic ops serialized at one FCFS server (probe =
///    step fetch-and-op / feedback read + size hint; commit = scheduled
///    fetch-and-op / remaining CAS), exactly the pricing the engines used
///    before the backends were pluggable. Wraps InterChunkSource for the
///    chunk math.
///
///  * ShardedInterSource — the per-node shard windows (ShardedInterQueue).
///    While a node's shard lasts, an acquisition is two atomics on the
///    *node-local* window: intranode latency, per-shard server — no
///    inter-node traffic and no shared hotspot. Once the shard drains the
///    node steals half the remainder of the most-loaded victim: priced as
///    one fabric RTT for the (pipelined) scan of the peer shards' counters
///    plus the CAS at the victim's server. The shard math comes from
///    dls/sharding.hpp, the same functions the real queue executes, so the
///    virtual and real chunk sequences cannot drift.
///
/// Adaptive feedback (report) is accounted at event-processing time, which
/// can precede the sub-chunk's virtual completion; the accumulated rates
/// are identical, the adaptation is merely visible one transaction earlier
/// than on a real machine. Determinism is unaffected.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "dls/adaptive.hpp"
#include "dls/chunk_formulas.hpp"
#include "dls/sharding.hpp"
#include "sim/cost_model.hpp"
#include "sim/resources.hpp"
#include "sim/simulator.hpp"

namespace hdls::sim::detail {

/// Chunk math of the centralized queues (no pricing): the step-indexed
/// (GlobalWorkQueue) and remaining-based (AdaptiveGlobalQueue) protocols
/// behind probe/commit pairs. The engines serialize global accesses in
/// virtual-time order, so the remaining-cell CAS always succeeds.
class InterChunkSource {
public:
    struct Take {
        std::int64_t start = 0;
        std::int64_t size = 0;
        std::int64_t step = 0;
    };

    InterChunkSource(dls::Technique technique, const dls::LoopParams& params, int nodes,
                     const std::vector<double>& wf_weights)
        : tech_(technique),
          params_(params),
          total_(params.total_iterations),
          remaining_(params.total_iterations),
          remaining_form_(dls::supports_remaining_based(technique)),
          feedback_(static_cast<std::size_t>(nodes)),
          weights_(dls::normalize_static_weights(wf_weights, nodes)),
          caches_(static_cast<std::size_t>(nodes)) {}

    /// First RMA op of an acquisition by `node`: the size hint. A value
    /// <= 0 means the technique ran dry (permanently).
    [[nodiscard]] std::int64_t probe(int node) {
        if (remaining_form_) {
            if (remaining_ <= 0) {
                return 0;
            }
            return dls::remaining_based_chunk(tech_, params_, remaining_, weight_of(node));
        }
        probe_step_ = step_++;
        return dls::chunk_size_for_step(tech_, params_, probe_step_);
    }

    /// Second RMA op: allocates `hint` iterations (clamped). std::nullopt
    /// when the loop is exhausted despite a positive hint.
    [[nodiscard]] std::optional<Take> commit(std::int64_t hint) {
        if (remaining_form_) {
            const std::int64_t size = std::min(hint, remaining_);
            if (size <= 0) {
                return std::nullopt;
            }
            const std::int64_t start = total_ - remaining_;
            remaining_ -= size;
            return Take{start, size, step_++};
        }
        const std::int64_t start = scheduled_;
        scheduled_ += hint;
        if (start >= total_) {
            return std::nullopt;
        }
        return Take{start, std::min(hint, total_ - start), probe_step_};
    }

    /// Accumulates execution feedback for `node` (the three fetch-and-op
    /// sums of the real adaptive queue).
    void report(int node, std::int64_t iterations, double compute_seconds,
                double overhead_seconds) {
        auto& f = feedback_[static_cast<std::size_t>(node)];
        f.iterations += iterations;
        f.compute_seconds += compute_seconds;
        f.overhead_seconds += overhead_seconds;
    }

    /// True when report() influences future chunk sizes (AWF-*): the
    /// engines then charge the report's RMA cost.
    [[nodiscard]] bool wants_feedback() const noexcept { return dls::is_adaptive(tech_); }

private:
    [[nodiscard]] double weight_of(int node) {
        if (!dls::is_adaptive(tech_)) {
            return weights_[static_cast<std::size_t>(node)];  // WF static / FAC ignored
        }
        return caches_[static_cast<std::size_t>(node)].weight(
            tech_, node, total_, remaining_,
            [&] { return std::span<const dls::NodeFeedback>(feedback_); });
    }

    dls::Technique tech_;
    dls::LoopParams params_;
    std::int64_t total_ = 0;
    std::int64_t remaining_ = 0;   // remaining-based forms
    std::int64_t step_ = 0;        // shared step counter
    std::int64_t scheduled_ = 0;   // step-indexed forms
    std::int64_t probe_step_ = 0;  // step consumed by the last probe
    bool remaining_form_ = false;
    std::vector<dls::NodeFeedback> feedback_;
    std::vector<double> weights_;
    std::vector<dls::AwfWeightCache> caches_;  // per-node AWF refresh cadence
};

/// One complete, RMA-priced level-1 acquisition per call — the simulator's
/// view of core::WorkSource.
class InterSource {
public:
    struct Take {
        std::int64_t start = 0;
        std::int64_t size = 0;
        std::int64_t step = 0;
        bool stolen = false;  ///< carved from a peer shard (sharded backend)
    };

    virtual ~InterSource() = default;

    /// Acquisition by `node` arriving at virtual time `t`. On success the
    /// take is returned and *done holds its completion time; on permanent
    /// exhaustion nullopt is returned with *done = completion of the
    /// failed probe (the caller still pays for learning the queue is dry).
    [[nodiscard]] virtual std::optional<Take> acquire(int node, double t, double* done) = 0;

    /// Execution feedback for `node` (no-op outside the adaptive family).
    virtual void report(int node, std::int64_t iterations, double compute_seconds,
                        double overhead_seconds) {
        (void)node;
        (void)iterations;
        (void)compute_seconds;
        (void)overhead_seconds;
    }

    /// True when report() influences future chunk sizes (AWF-*): the
    /// engines then charge the report's RMA cost.
    [[nodiscard]] virtual bool wants_feedback() const noexcept { return false; }
};

/// The rank-0-hosted backends: two RMA ops through one FCFS server.
/// `rma_latency_s` overrides the per-op RMA latency (per-level pricing of
/// deep trees); negative means the cost model's internode default.
class CentralizedInterSource final : public InterSource {
public:
    CentralizedInterSource(dls::Technique technique, const dls::LoopParams& params, int nodes,
                           const std::vector<double>& wf_weights, const CostModel& costs,
                           double rma_latency_s = -1.0)
        : src_(technique, params, nodes, wf_weights),
          server_(costs.global_service_s()),
          rma_(rma_latency_s >= 0.0 ? rma_latency_s : costs.rma_s()) {}

    [[nodiscard]] std::optional<Take> acquire(int node, double t, double* done) override {
        const double t1 = op(t);
        const std::int64_t hint = src_.probe(node);
        if (hint <= 0) {
            *done = t1;
            return std::nullopt;
        }
        const double t2 = op(t1);
        *done = t2;
        const auto take = src_.commit(hint);
        if (!take) {
            return std::nullopt;
        }
        return Take{take->start, take->size, take->step, false};
    }

    void report(int node, std::int64_t iterations, double compute_seconds,
                double overhead_seconds) override {
        src_.report(node, iterations, compute_seconds, overhead_seconds);
    }

    [[nodiscard]] bool wants_feedback() const noexcept override {
        return src_.wants_feedback();
    }

private:
    /// One RMA atomic on the global queue: half RTT out, serialized
    /// service at the target, half RTT back.
    [[nodiscard]] double op(double t) {
        return server_.acquire(t + rma_ / 2.0) + rma_ / 2.0;
    }

    InterChunkSource src_;
    FcfsResource server_;
    double rma_;
};

/// The per-node shard windows with CAS work stealing (ShardedInterQueue's
/// virtual twin; all shard math from dls/sharding.hpp).
class ShardedInterSource final : public InterSource {
public:
    ShardedInterSource(dls::Technique technique, const dls::LoopParams& params, int nodes,
                       const std::vector<double>& wf_weights, const CostModel& costs,
                       double rma_latency_s = -1.0)
        : tech_(technique),
          min_chunk_(params.min_chunk),
          workers_(params.workers),
          sizes_(dls::shard_partition(params.total_iterations, wf_weights, nodes)),
          remaining_(sizes_),
          step_(static_cast<std::size_t>(nodes), 0),
          rma_(rma_latency_s >= 0.0 ? rma_latency_s : costs.rma_s()),
          shm_(costs.intranode_rma_s()) {
        lo_.resize(static_cast<std::size_t>(nodes));
        std::int64_t acc = 0;
        for (int j = 0; j < nodes; ++j) {
            lo_[static_cast<std::size_t>(j)] = acc;
            acc += sizes_[static_cast<std::size_t>(j)];
        }
        servers_.reserve(static_cast<std::size_t>(nodes));
        for (int j = 0; j < nodes; ++j) {
            servers_.emplace_back(costs.global_service_s());
        }
    }

    [[nodiscard]] std::optional<Take> acquire(int node, double t, double* done) override {
        if (remaining_[static_cast<std::size_t>(node)] > 0) {
            // Own shard: step fetch-and-op + remaining CAS, both on the
            // node-local window.
            const double t1 = op(node, t, shm_);
            *done = op(node, t1, shm_);
            return take_from(node, false);
        }
        // Steal: one fabric RTT for the pipelined scan of the peer shards'
        // remaining counters, then the half-remainder CAS at the victim.
        int victim = -1;
        std::int64_t best = 0;
        for (std::size_t j = 0; j < remaining_.size(); ++j) {
            if (static_cast<int>(j) == node) {
                continue;
            }
            if (remaining_[j] > best) {
                best = remaining_[j];
                victim = static_cast<int>(j);
            }
        }
        const double scanned = t + rma_;
        if (victim < 0) {
            *done = scanned;
            return std::nullopt;  // every shard is dry: the loop is tiled
        }
        *done = op(victim, scanned, rma_);
        auto take = steal_from(victim, node);
        return take;
    }

private:
    /// One atomic on shard `shard`'s window: half the (intra- or
    /// inter-node) latency out, serialized service at the shard's host,
    /// half back.
    [[nodiscard]] double op(int shard, double t, double latency) {
        return servers_[static_cast<std::size_t>(shard)].acquire(t + latency / 2.0) +
               latency / 2.0;
    }

    [[nodiscard]] std::optional<Take> take_from(int shard, bool stolen) {
        std::int64_t& r = remaining_[static_cast<std::size_t>(shard)];
        if (r <= 0) {
            return std::nullopt;
        }
        const std::int64_t step = step_[static_cast<std::size_t>(shard)]++;
        const std::int64_t hint = dls::shard_chunk_hint(
            tech_, sizes_[static_cast<std::size_t>(shard)], workers_, min_chunk_, step);
        const std::int64_t take = hint > 0 ? std::min(hint, r) : r;
        const std::int64_t start =
            lo_[static_cast<std::size_t>(shard)] + sizes_[static_cast<std::size_t>(shard)] - r;
        r -= take;
        return Take{start, take, step, stolen};
    }

    [[nodiscard]] std::optional<Take> steal_from(int victim, int thief) {
        std::int64_t& r = remaining_[static_cast<std::size_t>(victim)];
        const std::int64_t take = dls::steal_amount(r, min_chunk_);
        if (take <= 0) {
            return std::nullopt;
        }
        const std::int64_t start = lo_[static_cast<std::size_t>(victim)] +
                                   sizes_[static_cast<std::size_t>(victim)] - r;
        r -= take;
        // The thief's own step counter supplies the id (telemetry only).
        return Take{start, take, step_[static_cast<std::size_t>(thief)]++, true};
    }

    dls::Technique tech_;
    std::int64_t min_chunk_ = 1;
    int workers_ = 1;  // P in the shard formulas (the node count)
    std::vector<std::int64_t> sizes_;
    std::vector<std::int64_t> lo_;
    std::vector<std::int64_t> remaining_;
    std::vector<std::int64_t> step_;
    std::vector<FcfsResource> servers_;  // one per shard window
    double rma_;
    double shm_;
};

/// Picks the backend for `config.inter`; a sharded request for a technique
/// without a sharded form (FAC, AWF-*) falls back to the centralized
/// source, mirroring core::make_inter_queue.
[[nodiscard]] inline std::unique_ptr<InterSource> make_inter_source(
    dls::InterBackend backend, dls::Technique technique, const dls::LoopParams& params,
    int nodes, const std::vector<double>& wf_weights, const CostModel& costs,
    double rma_latency_s = -1.0) {
    if (backend == dls::InterBackend::Sharded && dls::supports_sharded(technique)) {
        return std::make_unique<ShardedInterSource>(technique, params, nodes, wf_weights,
                                                    costs, rma_latency_s);
    }
    return std::make_unique<CentralizedInterSource>(technique, params, nodes, wf_weights,
                                                    costs, rma_latency_s);
}

/// Pricing of one adaptive-feedback flush — the three accumulator RMA
/// updates the real executors post on the root window. The one place both
/// engines take this cost from.
[[nodiscard]] inline double feedback_flush_s(const CostModel& costs) {
    return 3.0 * costs.level_rma_s(0);
}

/// What one *prefetched* (asynchronously issued) acquisition cost the
/// critical path: under SimConfig::prefetch the request flies while the
/// previous chunk computes, so the caller is charged the nonblocking
/// issue/completion cost plus only the part of the raw latency that
/// outlived the overlap window — max(compute_remaining, acquire_latency)
/// in place of their sum.
struct PrefetchCharge {
    double raw = 0.0;      ///< physical flight time of the acquisition
    double charged = 0.0;  ///< critical-path seconds (issue + residual latency)
    double hidden = 0.0;   ///< latency absorbed behind the overlap window
    bool hit = false;      ///< the acquisition completed within the window
};

/// The validated per-level plan of one simulated run (the sim twin of
/// core::resolve_hierarchy, duplicated only in shape: the simulator keeps
/// no dependency on the real executors' core layer).
struct SimPlan {
    std::vector<minimpi::TopologyLevel> tree;   ///< depth >= 2
    std::vector<dls::LevelScheme> levels;       ///< per level; interior backends engaged

    [[nodiscard]] int depth() const noexcept { return static_cast<int>(tree.size()); }
};

[[nodiscard]] inline SimPlan resolve_sim_plan(const ClusterSpec& cluster,
                                              const SimConfig& config) {
    SimPlan plan;
    plan.tree = cluster.effective_tree();  // cluster.validate() checked consistency
    const int depth = plan.depth();
    if (config.levels.empty()) {
        plan.levels.assign(static_cast<std::size_t>(depth),
                           dls::LevelScheme{config.inter, config.inter_backend});
        plan.levels.back() = dls::LevelScheme{config.intra, std::nullopt};
    } else {
        if (static_cast<int>(config.levels.size()) != depth) {
            throw std::invalid_argument("simulate: got " +
                                        std::to_string(config.levels.size()) +
                                        " level configs for a depth-" + std::to_string(depth) +
                                        " topology");
        }
        plan.levels = config.levels;
        for (int d = 0; d < depth - 1; ++d) {
            auto& lv = plan.levels[static_cast<std::size_t>(d)];
            if (!lv.backend) {
                lv.backend = config.inter_backend;
            }
        }
        plan.levels.back().backend.reset();
    }
    auto& root = plan.levels.front();
    if (!dls::supports_internode(root.technique)) {
        throw std::invalid_argument(
            std::string("simulate: level 0 technique ") +
            std::string(dls::technique_name(root.technique)) +
            " has neither a step-indexed nor a remaining-count-based distributed form");
    }
    if (root.backend == dls::InterBackend::Sharded && !dls::supports_sharded(root.technique)) {
        root.backend = dls::InterBackend::Centralized;
    }
    for (int d = 1; d < depth - 1; ++d) {
        auto& lv = plan.levels[static_cast<std::size_t>(d)];
        if (lv.backend == dls::InterBackend::Sharded && !dls::supports_sharded(lv.technique)) {
            lv.backend = dls::InterBackend::Centralized;
        }
        if (lv.backend == dls::InterBackend::Centralized &&
            !dls::supports_step_indexed(lv.technique)) {
            throw std::invalid_argument(
                std::string("simulate: level ") + std::to_string(d) + " technique " +
                std::string(dls::technique_name(lv.technique)) +
                " cannot relay parent chunks (needs a step-indexed or sharded form)");
        }
    }
    return plan;
}

/// The whole upper scheduling hierarchy of a deep tree, priced per level —
/// the one place both engines take acquire costs from (the leaf queue
/// models stay engine-side: PollingLock / dequeue counter / thread team).
///
/// One acquire() emulates the real ComposedWorkSource chain above the
/// leaf: pop the level-(L-2) relay of the caller's group; on empty, refill
/// it from the level above, recursively up to the root backend. Relay
/// accesses are priced as one serialized op per lock epoch on the relay's
/// group window (pop = one epoch, push+pop = one epoch — exactly the real
/// queue's epoch structure) at that level's RMA latency
/// (CostModel::level_rma_s). The classic depth-2 tree has no relays, so
/// acquire() degenerates to the root InterSource with byte-identical
/// pricing to the pre-hierarchy engines. Relay chunk math reuses the same
/// dls functions as the real NodeWorkQueue / ShardedRelayQueue, so the
/// virtual and real chunk sequences cannot drift.
class HierarchicalSource {
public:
    struct Take {
        std::int64_t start = 0;
        std::int64_t size = 0;
        bool stolen = false;  ///< carved from a peer's share (any level)
        int level = 0;        ///< level the chunk was pulled from
    };

    HierarchicalSource(const ClusterSpec& cluster, const SimConfig& config,
                       const SimPlan& plan, std::int64_t n)
        : depth_(plan.depth()), prefetch_issue_s_(cluster.costs.prefetch_issue_s()) {
        fan_.reserve(plan.tree.size());
        for (const auto& lv : plan.tree) {
            fan_.push_back(lv.fan_out);
        }
        // leaf_div_[d]: leaf groups contained in one depth-d group
        // (leaf_div_[depth-1] = 1, leaf_div_[0] = the leaf-group count).
        leaf_div_.assign(static_cast<std::size_t>(depth_), 1);
        for (int d = depth_ - 2; d >= 0; --d) {
            leaf_div_[static_cast<std::size_t>(d)] =
                fan_[static_cast<std::size_t>(d)] * leaf_div_[static_cast<std::size_t>(d + 1)];
        }

        dls::LoopParams params;
        params.total_iterations = n;
        params.workers = fan_.front();
        params.min_chunk = config.min_chunk;
        params.sigma = config.fac_sigma;
        params.mu = config.fac_mu;
        const auto& root = plan.levels.front();
        root_ = make_inter_source(root.backend.value_or(dls::InterBackend::Centralized),
                                  root.technique, params, fan_.front(), config.inter_weights,
                                  cluster.costs, cluster.costs.level_rma_s(0));

        relays_.resize(static_cast<std::size_t>(std::max(0, depth_ - 2)));
        int groups = 1;
        for (int d = 1; d <= depth_ - 2; ++d) {
            groups *= fan_[static_cast<std::size_t>(d - 1)];
            auto& level = relays_[static_cast<std::size_t>(d - 1)];
            level.reserve(static_cast<std::size_t>(groups));
            const auto& lv = plan.levels[static_cast<std::size_t>(d)];
            const bool sharded = lv.backend == dls::InterBackend::Sharded;
            for (int g = 0; g < groups; ++g) {
                level.emplace_back(Relay{sharded,
                                         sharded ? dls::shard_formula(lv.technique)
                                                 : lv.technique,
                                         fan_[static_cast<std::size_t>(d)],
                                         config.min_chunk,
                                         FcfsResource(cluster.costs.global_service_s()),
                                         cluster.costs.level_rma_s(d),
                                         {},
                                         0});
            }
        }
    }

    /// Acquisition for leaf group `leaf` arriving at `t`. On success *done
    /// holds the completion time. On failure *retry_at is the virtual time
    /// at which currently in-flight (pushed but not yet visible) work
    /// becomes poppable, or +infinity when the caller's branch is
    /// permanently dry.
    ///
    /// `overlap_s >= 0` prices the acquisition as asynchronously
    /// prefetched (SimConfig::prefetch): the request was issued behind a
    /// chunk whose compute time was overlap_s, so the successful caller is
    /// charged prefetch_issue_us + max(0, raw_latency - overlap_s) — i.e.
    /// max(compute, latency) across the chunk boundary instead of their
    /// sum. A negative overlap (the default) keeps the synchronous
    /// pricing; a dry-probe failure is never discounted (learning the
    /// branch is empty gains nothing from overlap). When `charge` is
    /// non-null it receives the hit/hidden decomposition for tracing.
    [[nodiscard]] std::optional<Take> acquire(int leaf, double t, double* done,
                                              double* retry_at, double overlap_s = -1.0,
                                              PrefetchCharge* charge = nullptr) {
        *retry_at = std::numeric_limits<double>::infinity();
        const auto take = walk(depth_ - 2, leaf, t, done, retry_at);
        if (take && overlap_s >= 0.0) {
            PrefetchCharge c;
            c.raw = std::max(0.0, *done - t);
            c.hidden = std::min(c.raw, overlap_s);
            c.charged = prefetch_issue_s_ + (c.raw - c.hidden);
            c.hit = c.raw <= overlap_s;
            *done = t + c.charged;
            if (charge != nullptr) {
                *charge = c;
            }
        }
        return take;
    }

    /// True once nothing can ever reach `leaf` again: the root is dry and
    /// every relay on the leaf's ancestor path is fully assigned. The
    /// engines gate refill attempts on this, exactly as they gated on the
    /// global-exhausted flag before trees got deep.
    [[nodiscard]] bool exhausted(int leaf) const {
        if (!root_dry_) {
            return false;
        }
        for (int d = 1; d <= depth_ - 2; ++d) {
            if (relay_of(d, leaf).unfinished()) {
                return false;
            }
        }
        return true;
    }

    /// Execution feedback for `leaf`'s branch, accumulated into its
    /// level-0 entity (no-op outside the adaptive family).
    void report(int leaf, std::int64_t iterations, double compute_seconds,
                double overhead_seconds) {
        root_->report(entity0(leaf), iterations, compute_seconds, overhead_seconds);
    }

    [[nodiscard]] bool wants_feedback() const noexcept { return root_->wants_feedback(); }

private:
    struct RelaySeg {
        int child = -1;  ///< owning child (sharded); -1 for the shared FIFO
        std::int64_t start = 0;
        std::int64_t size = 0;
        std::int64_t taken = 0;
        std::int64_t step = 0;
        double visible_at = 0.0;
    };

    struct Relay {
        bool sharded = false;
        dls::Technique slicer{};  ///< step-indexed slicer / shard formula
        int fan_out = 1;
        std::int64_t min_chunk = 1;
        FcfsResource server;
        double lat = 0.0;  ///< one-way RMA latency of this level's window
        std::vector<RelaySeg> segs;
        std::size_t head = 0;

        /// One lock epoch on the relay window: half the latency out,
        /// serialized service at the group host, half back.
        [[nodiscard]] double op(double t) { return server.acquire(t + lat / 2.0) + lat / 2.0; }

        [[nodiscard]] bool unfinished() const {
            for (std::size_t i = head; i < segs.size(); ++i) {
                if (segs[i].taken < segs[i].size) {
                    return true;
                }
            }
            return false;
        }

        [[nodiscard]] double earliest_visible() const {
            double earliest = std::numeric_limits<double>::infinity();
            for (std::size_t i = head; i < segs.size(); ++i) {
                if (segs[i].taken < segs[i].size) {
                    earliest = std::min(earliest, segs[i].visible_at);
                }
            }
            return earliest;
        }

        void push(std::int64_t start, std::int64_t size, double at) {
            if (!sharded) {
                segs.push_back({-1, start, size, 0, 0, at});
                return;
            }
            const std::vector<std::int64_t> parts = dls::shard_partition(size, {}, fan_out);
            std::int64_t off = 0;
            for (int c = 0; c < fan_out; ++c) {
                if (parts[static_cast<std::size_t>(c)] > 0) {
                    segs.push_back(
                        {c, start + off, parts[static_cast<std::size_t>(c)], 0, 0, at});
                }
                off += parts[static_cast<std::size_t>(c)];
            }
        }

        /// Allocates the next sub-chunk visible at `at` for `child`
        /// (ignored by the shared FIFO); sets *stolen when it carved a
        /// sibling's shard. Mirrors NodeWorkQueue::pop_locked /
        /// ShardedRelayQueue::pop_locked exactly.
        [[nodiscard]] std::optional<std::pair<std::int64_t, std::int64_t>> pop(int child,
                                                                              double at,
                                                                              bool* stolen) {
            while (head < segs.size() && segs[head].taken >= segs[head].size) {
                ++head;  // retire fully-assigned front segments
            }
            *stolen = false;
            if (!sharded) {
                for (std::size_t i = head; i < segs.size(); ++i) {
                    RelaySeg& s = segs[i];
                    if (s.taken >= s.size || s.visible_at > at) {
                        continue;
                    }
                    dls::LoopParams p;
                    p.total_iterations = s.size;
                    p.workers = fan_out;
                    p.min_chunk = min_chunk;
                    const std::int64_t hint =
                        dls::chunk_size_for_step(slicer, p, s.step);
                    const std::int64_t take =
                        hint > 0 ? std::min(hint, s.size - s.taken) : s.size - s.taken;
                    const std::int64_t begin = s.start + s.taken;
                    s.taken += take;
                    ++s.step;
                    return std::pair{begin, begin + take};
                }
                return std::nullopt;
            }
            // Own shard first.
            for (std::size_t i = head; i < segs.size(); ++i) {
                RelaySeg& s = segs[i];
                if (s.child != child || s.taken >= s.size || s.visible_at > at) {
                    continue;
                }
                const std::int64_t hint = dls::shard_chunk_hint(slicer, s.size, fan_out,
                                                                min_chunk, s.step);
                const std::int64_t take =
                    hint > 0 ? std::min(hint, s.size - s.taken) : s.size - s.taken;
                const std::int64_t begin = s.start + s.taken;
                s.taken += take;
                ++s.step;
                return std::pair{begin, begin + take};
            }
            // Steal half the front remainder of the most loaded sibling.
            int victim = -1;
            std::int64_t most = 0;
            for (int c = 0; c < fan_out; ++c) {
                if (c == child) {
                    continue;
                }
                std::int64_t remaining = 0;
                for (std::size_t i = head; i < segs.size(); ++i) {
                    const RelaySeg& s = segs[i];
                    if (s.child == c && s.visible_at <= at) {
                        remaining += s.size - s.taken;
                    }
                }
                if (remaining > most) {
                    most = remaining;
                    victim = c;
                }
            }
            if (victim < 0) {
                return std::nullopt;
            }
            for (std::size_t i = head; i < segs.size(); ++i) {
                RelaySeg& s = segs[i];
                if (s.child != victim || s.taken >= s.size || s.visible_at > at) {
                    continue;
                }
                const std::int64_t take = dls::steal_amount(s.size - s.taken, min_chunk);
                const std::int64_t begin = s.start + s.taken;
                s.taken += take;
                *stolen = true;
                return std::pair{begin, begin + take};
            }
            return std::nullopt;
        }
    };

    /// Level-0 entity (feedback slot / root shard) of a leaf group.
    [[nodiscard]] int entity0(int leaf) const noexcept { return group_at(1, leaf); }

    [[nodiscard]] const Relay& relay_of(int d, int leaf) const {
        return relays_[static_cast<std::size_t>(d - 1)]
                      [static_cast<std::size_t>(group_at(d, leaf))];
    }
    [[nodiscard]] Relay& relay_of(int d, int leaf) {
        return relays_[static_cast<std::size_t>(d - 1)]
                      [static_cast<std::size_t>(group_at(d, leaf))];
    }

    /// Depth-d ancestor group of a leaf group.
    [[nodiscard]] int group_at(int d, int leaf) const noexcept {
        return leaf / static_cast<int>(leaf_div_[static_cast<std::size_t>(d)]);
    }

    /// Child slot of the leaf's branch at level d.
    [[nodiscard]] int child_at(int d, int leaf) const noexcept {
        return group_at(d + 1, leaf) % fan_[static_cast<std::size_t>(d)];
    }

    [[nodiscard]] std::optional<Take> walk(int d, int leaf, double t, double* done,
                                           double* retry_at) {
        if (d <= 0) {
            if (root_dry_) {
                *done = t;
                return std::nullopt;
            }
            double completed = t;
            const auto take = root_->acquire(entity0(leaf), t, &completed);
            *done = completed;
            if (!take) {
                root_dry_ = true;
                return std::nullopt;
            }
            return Take{take->start, take->size, take->stolen, 0};
        }
        Relay& r = relay_of(d, leaf);
        const int child = child_at(d, leaf);
        const double t1 = r.op(t);
        bool stolen = false;
        if (const auto sub = r.pop(child, t1, &stolen)) {
            *done = t1;
            return Take{sub->first, sub->second - sub->first, stolen, d};
        }
        double updone = t1;
        const auto up = walk(d - 1, leaf, t1, &updone, retry_at);
        if (!up) {
            *retry_at = std::min(*retry_at, r.earliest_visible());
            *done = updone;
            return std::nullopt;
        }
        // Push + pop own first sub-chunk in one lock epoch.
        const double t2 = r.op(updone);
        r.push(up->start, up->size, t2);
        *done = t2;
        if (const auto sub = r.pop(child, t2, &stolen)) {
            return Take{sub->first, sub->second - sub->first, stolen, d};
        }
        *retry_at = std::min(*retry_at, t2);
        return std::nullopt;
    }

    int depth_ = 2;
    double prefetch_issue_s_ = 0.0;  ///< nonblocking issue+completion cost
    std::vector<int> fan_;
    std::vector<std::int64_t> leaf_div_;  ///< leaf groups per depth-d group
    std::unique_ptr<InterSource> root_;
    bool root_dry_ = false;
    std::vector<std::vector<Relay>> relays_;  ///< [level-1][group]
};

}  // namespace hdls::sim::detail
