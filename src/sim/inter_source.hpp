#pragma once
/// \file inter_source.hpp
/// Virtual-time inter-node chunk source shared by both simulation engines.
///
/// Mirrors the real level-1 queues behind one protocol with two RMA-priced
/// steps per acquisition, so the engines charge identical virtual-time
/// costs for both forms:
///  * step-indexed (GlobalWorkQueue): probe = step fetch-and-op + local
///    formula; commit = scheduled fetch-and-op + clamp;
///  * remaining-based (AdaptiveGlobalQueue): probe = feedback read + weight
///    derivation + size hint from the exact remaining count; commit = the
///    CAS on the remaining cell (which always succeeds here: the engines
///    serialize global accesses in virtual-time order).
///
/// Adaptive feedback (report) is accounted at event-processing time, which
/// can precede the sub-chunk's virtual completion; the accumulated rates
/// are identical, the adaptation is merely visible one transaction earlier
/// than on a real machine. Determinism is unaffected.

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dls/adaptive.hpp"
#include "dls/chunk_formulas.hpp"

namespace hdls::sim::detail {

class InterChunkSource {
public:
    struct Take {
        std::int64_t start = 0;
        std::int64_t size = 0;
        std::int64_t step = 0;
    };

    InterChunkSource(dls::Technique technique, const dls::LoopParams& params, int nodes,
                     const std::vector<double>& wf_weights)
        : tech_(technique),
          params_(params),
          total_(params.total_iterations),
          remaining_(params.total_iterations),
          remaining_form_(dls::supports_remaining_based(technique)),
          feedback_(static_cast<std::size_t>(nodes)),
          weights_(dls::normalize_static_weights(wf_weights, nodes)),
          caches_(static_cast<std::size_t>(nodes)) {}

    /// First RMA op of an acquisition by `node`: the size hint. A value
    /// <= 0 means the technique ran dry (permanently).
    [[nodiscard]] std::int64_t probe(int node) {
        if (remaining_form_) {
            if (remaining_ <= 0) {
                return 0;
            }
            return dls::remaining_based_chunk(tech_, params_, remaining_, weight_of(node));
        }
        probe_step_ = step_++;
        return dls::chunk_size_for_step(tech_, params_, probe_step_);
    }

    /// Second RMA op: allocates `hint` iterations (clamped). std::nullopt
    /// when the loop is exhausted despite a positive hint.
    [[nodiscard]] std::optional<Take> commit(std::int64_t hint) {
        if (remaining_form_) {
            const std::int64_t size = std::min(hint, remaining_);
            if (size <= 0) {
                return std::nullopt;
            }
            const std::int64_t start = total_ - remaining_;
            remaining_ -= size;
            return Take{start, size, step_++};
        }
        const std::int64_t start = scheduled_;
        scheduled_ += hint;
        if (start >= total_) {
            return std::nullopt;
        }
        return Take{start, std::min(hint, total_ - start), probe_step_};
    }

    /// Accumulates execution feedback for `node` (the three fetch-and-op
    /// sums of the real adaptive queue).
    void report(int node, std::int64_t iterations, double compute_seconds,
                double overhead_seconds) {
        auto& f = feedback_[static_cast<std::size_t>(node)];
        f.iterations += iterations;
        f.compute_seconds += compute_seconds;
        f.overhead_seconds += overhead_seconds;
    }

    /// True when report() influences future chunk sizes (AWF-*): the
    /// engines then charge the report's RMA cost.
    [[nodiscard]] bool wants_feedback() const noexcept { return dls::is_adaptive(tech_); }

private:
    [[nodiscard]] double weight_of(int node) {
        if (!dls::is_adaptive(tech_)) {
            return weights_[static_cast<std::size_t>(node)];  // WF static / FAC ignored
        }
        return caches_[static_cast<std::size_t>(node)].weight(
            tech_, node, total_, remaining_,
            [&] { return std::span<const dls::NodeFeedback>(feedback_); });
    }

    dls::Technique tech_;
    dls::LoopParams params_;
    std::int64_t total_ = 0;
    std::int64_t remaining_ = 0;   // remaining-based forms
    std::int64_t step_ = 0;        // shared step counter
    std::int64_t scheduled_ = 0;   // step-indexed forms
    std::int64_t probe_step_ = 0;  // step consumed by the last probe
    bool remaining_form_ = false;
    std::vector<dls::NodeFeedback> feedback_;
    std::vector<double> weights_;
    std::vector<dls::AwfWeightCache> caches_;  // per-node AWF refresh cadence
};

}  // namespace hdls::sim::detail
