#pragma once
/// \file inter_source.hpp
/// Virtual-time inter-node chunk sources shared by both simulation engines.
///
/// InterSource is the level-1 counterpart of the real executors'
/// WorkSource: one `acquire()` performs a complete level-1 acquisition in
/// virtual time, including the RMA pricing, so both engines charge
/// identical costs for every backend. Two implementations mirror the real
/// queues:
///
///  * CentralizedInterSource — the rank-0-hosted queues. Each acquisition
///    is two RMA-priced atomic ops serialized at one FCFS server (probe =
///    step fetch-and-op / feedback read + size hint; commit = scheduled
///    fetch-and-op / remaining CAS), exactly the pricing the engines used
///    before the backends were pluggable. Wraps InterChunkSource for the
///    chunk math.
///
///  * ShardedInterSource — the per-node shard windows (ShardedInterQueue).
///    While a node's shard lasts, an acquisition is two atomics on the
///    *node-local* window: intranode latency, per-shard server — no
///    inter-node traffic and no shared hotspot. Once the shard drains the
///    node steals half the remainder of the most-loaded victim: priced as
///    one fabric RTT for the (pipelined) scan of the peer shards' counters
///    plus the CAS at the victim's server. The shard math comes from
///    dls/sharding.hpp, the same functions the real queue executes, so the
///    virtual and real chunk sequences cannot drift.
///
/// Adaptive feedback (report) is accounted at event-processing time, which
/// can precede the sub-chunk's virtual completion; the accumulated rates
/// are identical, the adaptation is merely visible one transaction earlier
/// than on a real machine. Determinism is unaffected.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "dls/adaptive.hpp"
#include "dls/chunk_formulas.hpp"
#include "dls/sharding.hpp"
#include "sim/cost_model.hpp"
#include "sim/resources.hpp"

namespace hdls::sim::detail {

/// Chunk math of the centralized queues (no pricing): the step-indexed
/// (GlobalWorkQueue) and remaining-based (AdaptiveGlobalQueue) protocols
/// behind probe/commit pairs. The engines serialize global accesses in
/// virtual-time order, so the remaining-cell CAS always succeeds.
class InterChunkSource {
public:
    struct Take {
        std::int64_t start = 0;
        std::int64_t size = 0;
        std::int64_t step = 0;
    };

    InterChunkSource(dls::Technique technique, const dls::LoopParams& params, int nodes,
                     const std::vector<double>& wf_weights)
        : tech_(technique),
          params_(params),
          total_(params.total_iterations),
          remaining_(params.total_iterations),
          remaining_form_(dls::supports_remaining_based(technique)),
          feedback_(static_cast<std::size_t>(nodes)),
          weights_(dls::normalize_static_weights(wf_weights, nodes)),
          caches_(static_cast<std::size_t>(nodes)) {}

    /// First RMA op of an acquisition by `node`: the size hint. A value
    /// <= 0 means the technique ran dry (permanently).
    [[nodiscard]] std::int64_t probe(int node) {
        if (remaining_form_) {
            if (remaining_ <= 0) {
                return 0;
            }
            return dls::remaining_based_chunk(tech_, params_, remaining_, weight_of(node));
        }
        probe_step_ = step_++;
        return dls::chunk_size_for_step(tech_, params_, probe_step_);
    }

    /// Second RMA op: allocates `hint` iterations (clamped). std::nullopt
    /// when the loop is exhausted despite a positive hint.
    [[nodiscard]] std::optional<Take> commit(std::int64_t hint) {
        if (remaining_form_) {
            const std::int64_t size = std::min(hint, remaining_);
            if (size <= 0) {
                return std::nullopt;
            }
            const std::int64_t start = total_ - remaining_;
            remaining_ -= size;
            return Take{start, size, step_++};
        }
        const std::int64_t start = scheduled_;
        scheduled_ += hint;
        if (start >= total_) {
            return std::nullopt;
        }
        return Take{start, std::min(hint, total_ - start), probe_step_};
    }

    /// Accumulates execution feedback for `node` (the three fetch-and-op
    /// sums of the real adaptive queue).
    void report(int node, std::int64_t iterations, double compute_seconds,
                double overhead_seconds) {
        auto& f = feedback_[static_cast<std::size_t>(node)];
        f.iterations += iterations;
        f.compute_seconds += compute_seconds;
        f.overhead_seconds += overhead_seconds;
    }

    /// True when report() influences future chunk sizes (AWF-*): the
    /// engines then charge the report's RMA cost.
    [[nodiscard]] bool wants_feedback() const noexcept { return dls::is_adaptive(tech_); }

private:
    [[nodiscard]] double weight_of(int node) {
        if (!dls::is_adaptive(tech_)) {
            return weights_[static_cast<std::size_t>(node)];  // WF static / FAC ignored
        }
        return caches_[static_cast<std::size_t>(node)].weight(
            tech_, node, total_, remaining_,
            [&] { return std::span<const dls::NodeFeedback>(feedback_); });
    }

    dls::Technique tech_;
    dls::LoopParams params_;
    std::int64_t total_ = 0;
    std::int64_t remaining_ = 0;   // remaining-based forms
    std::int64_t step_ = 0;        // shared step counter
    std::int64_t scheduled_ = 0;   // step-indexed forms
    std::int64_t probe_step_ = 0;  // step consumed by the last probe
    bool remaining_form_ = false;
    std::vector<dls::NodeFeedback> feedback_;
    std::vector<double> weights_;
    std::vector<dls::AwfWeightCache> caches_;  // per-node AWF refresh cadence
};

/// One complete, RMA-priced level-1 acquisition per call — the simulator's
/// view of core::WorkSource.
class InterSource {
public:
    struct Take {
        std::int64_t start = 0;
        std::int64_t size = 0;
        std::int64_t step = 0;
        bool stolen = false;  ///< carved from a peer shard (sharded backend)
    };

    virtual ~InterSource() = default;

    /// Acquisition by `node` arriving at virtual time `t`. On success the
    /// take is returned and *done holds its completion time; on permanent
    /// exhaustion nullopt is returned with *done = completion of the
    /// failed probe (the caller still pays for learning the queue is dry).
    [[nodiscard]] virtual std::optional<Take> acquire(int node, double t, double* done) = 0;

    /// Execution feedback for `node` (no-op outside the adaptive family).
    virtual void report(int node, std::int64_t iterations, double compute_seconds,
                        double overhead_seconds) {
        (void)node;
        (void)iterations;
        (void)compute_seconds;
        (void)overhead_seconds;
    }

    /// True when report() influences future chunk sizes (AWF-*): the
    /// engines then charge the report's RMA cost.
    [[nodiscard]] virtual bool wants_feedback() const noexcept { return false; }
};

/// The rank-0-hosted backends: two RMA ops through one FCFS server.
class CentralizedInterSource final : public InterSource {
public:
    CentralizedInterSource(dls::Technique technique, const dls::LoopParams& params, int nodes,
                           const std::vector<double>& wf_weights, const CostModel& costs)
        : src_(technique, params, nodes, wf_weights),
          server_(costs.global_service_s()),
          rma_(costs.rma_s()) {}

    [[nodiscard]] std::optional<Take> acquire(int node, double t, double* done) override {
        const double t1 = op(t);
        const std::int64_t hint = src_.probe(node);
        if (hint <= 0) {
            *done = t1;
            return std::nullopt;
        }
        const double t2 = op(t1);
        *done = t2;
        const auto take = src_.commit(hint);
        if (!take) {
            return std::nullopt;
        }
        return Take{take->start, take->size, take->step, false};
    }

    void report(int node, std::int64_t iterations, double compute_seconds,
                double overhead_seconds) override {
        src_.report(node, iterations, compute_seconds, overhead_seconds);
    }

    [[nodiscard]] bool wants_feedback() const noexcept override {
        return src_.wants_feedback();
    }

private:
    /// One RMA atomic on the global queue: half RTT out, serialized
    /// service at the target, half RTT back.
    [[nodiscard]] double op(double t) {
        return server_.acquire(t + rma_ / 2.0) + rma_ / 2.0;
    }

    InterChunkSource src_;
    FcfsResource server_;
    double rma_;
};

/// The per-node shard windows with CAS work stealing (ShardedInterQueue's
/// virtual twin; all shard math from dls/sharding.hpp).
class ShardedInterSource final : public InterSource {
public:
    ShardedInterSource(dls::Technique technique, const dls::LoopParams& params, int nodes,
                       const std::vector<double>& wf_weights, const CostModel& costs)
        : tech_(technique),
          min_chunk_(params.min_chunk),
          workers_(params.workers),
          sizes_(dls::shard_partition(params.total_iterations, wf_weights, nodes)),
          remaining_(sizes_),
          step_(static_cast<std::size_t>(nodes), 0),
          rma_(costs.rma_s()),
          shm_(costs.intranode_rma_s()) {
        lo_.resize(static_cast<std::size_t>(nodes));
        std::int64_t acc = 0;
        for (int j = 0; j < nodes; ++j) {
            lo_[static_cast<std::size_t>(j)] = acc;
            acc += sizes_[static_cast<std::size_t>(j)];
        }
        servers_.reserve(static_cast<std::size_t>(nodes));
        for (int j = 0; j < nodes; ++j) {
            servers_.emplace_back(costs.global_service_s());
        }
    }

    [[nodiscard]] std::optional<Take> acquire(int node, double t, double* done) override {
        if (remaining_[static_cast<std::size_t>(node)] > 0) {
            // Own shard: step fetch-and-op + remaining CAS, both on the
            // node-local window.
            const double t1 = op(node, t, shm_);
            *done = op(node, t1, shm_);
            return take_from(node, false);
        }
        // Steal: one fabric RTT for the pipelined scan of the peer shards'
        // remaining counters, then the half-remainder CAS at the victim.
        int victim = -1;
        std::int64_t best = 0;
        for (std::size_t j = 0; j < remaining_.size(); ++j) {
            if (static_cast<int>(j) == node) {
                continue;
            }
            if (remaining_[j] > best) {
                best = remaining_[j];
                victim = static_cast<int>(j);
            }
        }
        const double scanned = t + rma_;
        if (victim < 0) {
            *done = scanned;
            return std::nullopt;  // every shard is dry: the loop is tiled
        }
        *done = op(victim, scanned, rma_);
        auto take = steal_from(victim, node);
        return take;
    }

private:
    /// One atomic on shard `shard`'s window: half the (intra- or
    /// inter-node) latency out, serialized service at the shard's host,
    /// half back.
    [[nodiscard]] double op(int shard, double t, double latency) {
        return servers_[static_cast<std::size_t>(shard)].acquire(t + latency / 2.0) +
               latency / 2.0;
    }

    [[nodiscard]] std::optional<Take> take_from(int shard, bool stolen) {
        std::int64_t& r = remaining_[static_cast<std::size_t>(shard)];
        if (r <= 0) {
            return std::nullopt;
        }
        const std::int64_t step = step_[static_cast<std::size_t>(shard)]++;
        const std::int64_t hint = dls::shard_chunk_hint(
            tech_, sizes_[static_cast<std::size_t>(shard)], workers_, min_chunk_, step);
        const std::int64_t take = hint > 0 ? std::min(hint, r) : r;
        const std::int64_t start =
            lo_[static_cast<std::size_t>(shard)] + sizes_[static_cast<std::size_t>(shard)] - r;
        r -= take;
        return Take{start, take, step, stolen};
    }

    [[nodiscard]] std::optional<Take> steal_from(int victim, int thief) {
        std::int64_t& r = remaining_[static_cast<std::size_t>(victim)];
        const std::int64_t take = dls::steal_amount(r, min_chunk_);
        if (take <= 0) {
            return std::nullopt;
        }
        const std::int64_t start = lo_[static_cast<std::size_t>(victim)] +
                                   sizes_[static_cast<std::size_t>(victim)] - r;
        r -= take;
        // The thief's own step counter supplies the id (telemetry only).
        return Take{start, take, step_[static_cast<std::size_t>(thief)]++, true};
    }

    dls::Technique tech_;
    std::int64_t min_chunk_ = 1;
    int workers_ = 1;  // P in the shard formulas (the node count)
    std::vector<std::int64_t> sizes_;
    std::vector<std::int64_t> lo_;
    std::vector<std::int64_t> remaining_;
    std::vector<std::int64_t> step_;
    std::vector<FcfsResource> servers_;  // one per shard window
    double rma_;
    double shm_;
};

/// Picks the backend for `config.inter`; a sharded request for a technique
/// without a sharded form (FAC, AWF-*) falls back to the centralized
/// source, mirroring core::make_inter_queue.
[[nodiscard]] inline std::unique_ptr<InterSource> make_inter_source(
    dls::InterBackend backend, dls::Technique technique, const dls::LoopParams& params,
    int nodes, const std::vector<double>& wf_weights, const CostModel& costs) {
    if (backend == dls::InterBackend::Sharded && dls::supports_sharded(technique)) {
        return std::make_unique<ShardedInterSource>(technique, params, nodes, wf_weights,
                                                    costs);
    }
    return std::make_unique<CentralizedInterSource>(technique, params, nodes, wf_weights,
                                                    costs);
}

}  // namespace hdls::sim::detail
