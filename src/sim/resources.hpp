#pragma once
/// \file resources.hpp
/// Virtual-time serialization resources of the simulator.
///
/// Both resources serialize requests in *processing order* (the simulator
/// processes workers in increasing virtual-time order, so processing order
/// is request order). They differ in the grant discipline:
///  * FcfsResource — immediate grant when free (atomic counters, the global
///    queue's target-side agent).
///  * PollingLock — MPI_Win_lock semantics: a blocked origin only re-tests
///    the lock every `poll` seconds, so grants quantize up to the polling
///    period under contention (the paper's ref [38] behaviour).

#include <cmath>
#include <deque>

namespace hdls::sim {

/// Single FIFO server with fixed service time.
class FcfsResource {
public:
    explicit FcfsResource(double service_seconds) noexcept : service_(service_seconds) {}

    /// Requests service at `arrival`; returns the completion time.
    double acquire(double arrival) noexcept {
        const double start = arrival > busy_until_ ? arrival : busy_until_;
        busy_until_ = start + service_;
        return busy_until_;
    }

    [[nodiscard]] double busy_until() const noexcept { return busy_until_; }

private:
    double service_;
    double busy_until_ = 0.0;
};

/// Exclusive lock with MPI_Win_lock passive-target semantics under the
/// lock-attempt polling protocol of the paper's ref [38]:
///  * a free lock is granted immediately;
///  * a blocked origin re-sends lock-attempt messages every `poll`
///    seconds, so the handoff after a release slips by ~poll/2 on average;
///  * every *other* origin still polling at that moment also has attempt
///    messages queued at the target agent, each costing `attempt` agent
///    time before the winner's grant is processed. This is the
///    contention-superlinear degradation Zhao, Balaji & Gropp measured,
///    and the mechanism behind the paper's intra-node SS collapse.
class PollingLock {
public:
    PollingLock(double hold_seconds, double poll_seconds, double attempt_seconds) noexcept
        : hold_(hold_seconds), poll_(poll_seconds), attempt_(attempt_seconds) {}

    struct Grant {
        double acquired = 0.0;  ///< when the lock was granted
        double released = 0.0;  ///< when the holder released it
        double wait = 0.0;      ///< acquired - request time
    };

    /// Requests the lock at `arrival`; the epoch lasts `hold_` seconds.
    /// Requests must be issued in non-decreasing arrival order (the
    /// simulator's event loop guarantees this).
    Grant acquire(double arrival) noexcept {
        // Origins whose grant time lies beyond our arrival were still
        // polling when we arrived: their attempt traffic delays the handoff.
        while (!polling_.empty() && polling_.front() <= arrival) {
            polling_.pop_front();
        }
        const auto depth = static_cast<double>(polling_.size());
        double acquired = arrival;
        if (busy_until_ > arrival) {
            acquired = busy_until_ + poll_ / 2.0 + attempt_ * depth;
        }
        Grant g;
        g.acquired = acquired;
        g.released = acquired + hold_;
        g.wait = acquired - arrival;
        busy_until_ = g.released;
        polling_.push_back(g.acquired);
        return g;
    }

    [[nodiscard]] double busy_until() const noexcept { return busy_until_; }

private:
    double hold_;
    double poll_;
    double attempt_;
    double busy_until_ = 0.0;
    std::deque<double> polling_;  ///< grant times of recent contenders
};

}  // namespace hdls::sim
