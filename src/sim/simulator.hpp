#pragma once
/// \file simulator.hpp
/// Entry point of the discrete-event cluster simulator.
///
/// The simulator executes the paper's two hierarchical execution models in
/// virtual time over a per-iteration cost trace. It is deterministic: the
/// same inputs always produce the same report, independent of host machine
/// and thread count (everything runs on the calling thread).
///
/// Execution models:
///  * MpiMpi — the paper's proposal: every worker is a rank; node-local
///    shared queue guarded by a PollingLock (MPI_Win_lock); any rank
///    refills from the global queue (distributed chunk calculation).
///  * MpiOpenMp — the baseline: one master per node fetches chunks; a
///    thread team executes each chunk under the intra schedule with an
///    implicit barrier per chunk (Figure 2).
///  * MpiOpenMpNowait — the paper's Section-6 future work: worksharing
///    without the implicit barrier, modelled as a node-local chunk pool
///    with cheap atomic dequeues; only the master thread may refill
///    (MPI_THREAD_FUNNELED), unlike MPI+MPI's any-rank refill.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

#include "dls/sharding.hpp"
#include "dls/technique.hpp"
#include "sim/cost_model.hpp"
#include "sim/report.hpp"
#include "sim/workload.hpp"

namespace hdls::sim {

enum class ExecModel {
    MpiMpi,
    MpiOpenMp,
    MpiOpenMpNowait,
};

[[nodiscard]] std::string_view exec_model_name(ExecModel m) noexcept;
[[nodiscard]] std::optional<ExecModel> exec_model_from_string(std::string_view name) noexcept;

/// Fail-stop fault injection for the simulated cluster — the virtual-time
/// mirror of the real executor's HDLS_CHAOS seam. Node `node` dies at the
/// first event after `at_fraction` of the iteration space has been
/// assigned; its workers leave the loop at their next chunk boundary (the
/// sub-chunk they are computing completes, matching the real seam's
/// boundary placement). Under the shared-queue engines the unassigned
/// remainders of the dead node's local queue are re-queued on the
/// surviving nodes after `detect_delay_s` of virtual detection latency
/// (the heartbeat-timeout analogue) and counted in
/// SimReport::reclaimed_iterations. The hybrid baseline has no node-local
/// queue content to reclaim: the dead node simply stops fetching and the
/// remaining global work drains through the survivors.
struct SimFailure {
    int node = -1;  ///< node to kill; -1 disables the injection
    double at_fraction = 0.5;   ///< progress trigger, fraction of N assigned
    double detect_delay_s = 0.0;  ///< virtual failure-detection latency
    [[nodiscard]] bool enabled() const noexcept { return node >= 0; }
};

/// Scheduling combination "inter + intra" (paper notation X+Y).
struct SimConfig {
    dls::Technique inter = dls::Technique::GSS;
    dls::Technique intra = dls::Technique::GSS;
    /// Which level-1 implementation serves `inter`: the centralized rank-0
    /// window or per-node shards with CAS work stealing (mirrors
    /// HierConfig::inter_backend; unsupported techniques fall back to
    /// centralized).
    dls::InterBackend inter_backend = dls::InterBackend::Centralized;
    std::int64_t min_chunk = 1;
    /// Static per-node weights for WF at the inter-node level (empty =
    /// equal; otherwise size must equal the cluster's node count).
    std::vector<double> inter_weights;
    /// FAC probabilistic inputs (stddev/mean of iteration time, seconds).
    double fac_sigma = 0.0;
    double fac_mu = 1.0;
    /// Per-level technique/backend choices for a deep ClusterSpec::tree,
    /// one per tree level (mirrors HierConfig::levels). Empty derives
    /// {inter + inter_backend, [inter + inter_backend ...,] intra}; when
    /// set, the size must equal the tree depth and `inter`/`intra` are
    /// ignored. An unset backend inherits `inter_backend` (interior
    /// levels).
    std::vector<dls::LevelScheme> levels;
    /// Asynchronous chunk prefetching (mirrors HierConfig::prefetch): an
    /// upper-level acquisition that follows a computed chunk is priced as
    /// overlapped — CostModel::prefetch_issue_us plus only the part of the
    /// acquire latency that exceeds the chunk's compute time — instead of
    /// the full synchronous latency. Chunk sequences are unchanged; only
    /// the pricing (and the recorded Prefetch hit/miss events) differ.
    bool prefetch = false;
    /// Record virtual-time chunk-lifecycle events into SimReport::trace
    /// (same schema as the real executors' traces, so every exporter and
    /// analysis in src/trace/ applies).
    bool trace = false;
    /// Per-worker trace ring-buffer capacity in events.
    std::size_t trace_capacity = 1 << 16;
    /// Fail-stop fault injection (disabled by default); prices the cost of
    /// losing a node mid-loop under each execution model.
    SimFailure failure;
};

/// Simulates one loop execution; throws std::invalid_argument for
/// combinations without a step-indexed form (see dls::supports_step_indexed).
[[nodiscard]] SimReport simulate(ExecModel model, const ClusterSpec& cluster,
                                 const SimConfig& config, const WorkloadTrace& trace);

}  // namespace hdls::sim
