#include "sim/job_stream.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "dls/sharding.hpp"

namespace hdls::sim {

namespace {

constexpr double kEps = 1e-12;

struct FluidJob {
    std::size_t index = 0;       ///< position in the input vector
    double priority = 1.0;
    double arrival = 0.0;
    double solo_time = 0.0;      ///< T_j
    double parallelism = 1.0;    ///< P_j, clamped to [1, W]
    std::int64_t iterations = 0;
    double remaining = 0.0;      ///< solo-run-time not yet executed
    double entitled = 0.0;       ///< current apportioned share g_j
    double usable = 0.0;         ///< current usable share u_j <= min(g_j surplus, P_j)
    double slot_seconds = 0.0;
    double entitled_seconds = 0.0;
    double finish = 0.0;
    bool done = false;
};

/// Re-apportion the slots across active jobs exactly like the governor
/// (weight = priority × remaining iterations, largest-remainder), then
/// water-fill: a job cannot use more slots than its parallelism P_j, and
/// slots it cannot use flow to jobs that still can.
void apportion(std::vector<FluidJob*>& active, int slots) {
    const int n = static_cast<int>(active.size());
    std::vector<double> weights(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        const FluidJob& j = *active[static_cast<std::size_t>(i)];
        const double remaining_iters =
            j.solo_time > 0.0
                ? static_cast<double>(j.iterations) * (j.remaining / j.solo_time)
                : 0.0;
        weights[static_cast<std::size_t>(i)] = j.priority * std::max(remaining_iters, 1.0);
    }
    const std::vector<std::int64_t> shares =
        dls::shard_partition(static_cast<std::int64_t>(slots), weights, n);
    for (int i = 0; i < n; ++i) {
        active[static_cast<std::size_t>(i)]->entitled =
            static_cast<double>(shares[static_cast<std::size_t>(i)]);
    }

    // Water-filling: clamp each job at P_j, then hand the freed capacity
    // to unclamped jobs in proportion to their entitlement until either
    // the surplus is gone or everyone is clamped (the fluid analogue of a
    // work-conserving governor — idle slots never sit while a job could
    // use them).
    for (FluidJob* j : active) {
        j->usable = std::min(j->entitled, j->parallelism);
    }
    double surplus = 0.0;
    for (const FluidJob* j : active) {
        surplus += j->entitled - j->usable;
    }
    while (surplus > kEps) {
        double open_weight = 0.0;
        for (const FluidJob* j : active) {
            if (j->usable < j->parallelism - kEps) {
                open_weight += std::max(j->entitled, 1.0);
            }
        }
        if (open_weight <= kEps) {
            break;  // everyone saturated: surplus genuinely idles
        }
        double distributed = 0.0;
        for (FluidJob* j : active) {
            if (j->usable < j->parallelism - kEps) {
                const double grant =
                    std::min(surplus * std::max(j->entitled, 1.0) / open_weight,
                             j->parallelism - j->usable);
                j->usable += grant;
                distributed += grant;
            }
        }
        if (distributed <= kEps) {
            break;
        }
        surplus -= distributed;
    }
}

}  // namespace

double JobStreamReport::latency_quantile(double q) const {
    if (jobs.empty()) {
        return 0.0;
    }
    std::vector<double> lat;
    lat.reserve(jobs.size());
    for (const auto& j : jobs) {
        lat.push_back(j.latency);
    }
    std::sort(lat.begin(), lat.end());
    const double rank = std::clamp(q, 0.0, 1.0) * static_cast<double>(lat.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - std::floor(rank);
    return lat[lo] + (lat[hi] - lat[lo]) * frac;
}

JobStreamReport simulate_job_stream(ExecModel model, const ClusterSpec& cluster,
                                    const SimConfig& base,
                                    const std::vector<StreamJob>& jobs) {
    if (jobs.empty()) {
        throw std::invalid_argument("simulate_job_stream: empty job stream");
    }
    cluster.validate();
    const int slots = cluster.total_workers();

    // Stage 1: solo pricing per job on the real engine.
    std::vector<FluidJob> fluid(jobs.size());
    JobStreamReport out;
    out.slots = slots;
    out.jobs.resize(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const StreamJob& sj = jobs[i];
        if (!(sj.priority > 0.0)) {
            throw std::invalid_argument("simulate_job_stream: priority must be > 0");
        }
        if (sj.arrival < 0.0) {
            throw std::invalid_argument("simulate_job_stream: arrival must be >= 0");
        }
        const SimConfig& cfg = sj.config ? *sj.config : base;
        const SimReport solo = simulate(model, cluster, cfg, sj.workload);

        FluidJob& f = fluid[i];
        f.index = i;
        f.priority = sj.priority;
        f.arrival = sj.arrival;
        f.solo_time = solo.parallel_time;
        f.iterations = sj.workload.iterations();
        f.remaining = solo.parallel_time;
        f.done = f.remaining <= 0.0;
        f.finish = f.done ? sj.arrival : 0.0;
        const double p = solo.parallel_time > 0.0
                             ? solo.total_busy() / solo.parallel_time
                             : 1.0;
        f.parallelism = std::clamp(p, 1.0, static_cast<double>(slots));

        out.serial_time += solo.parallel_time;
    }

    // Stage 2: fluid processor-sharing in virtual time.
    double now = 0.0;
    for (;;) {
        std::vector<FluidJob*> active;
        double next_arrival = std::numeric_limits<double>::infinity();
        for (FluidJob& f : fluid) {
            if (f.done) {
                continue;
            }
            if (f.arrival <= now + kEps) {
                active.push_back(&f);
            } else {
                next_arrival = std::min(next_arrival, f.arrival);
            }
        }
        if (active.empty()) {
            if (!std::isfinite(next_arrival)) {
                break;  // all jobs finished
            }
            now = next_arrival;
            continue;
        }

        apportion(active, slots);

        // Each active job burns solo-run-time at rate usable / P_j; find
        // the earliest completion under the current split.
        double next_completion = std::numeric_limits<double>::infinity();
        for (const FluidJob* j : active) {
            if (j->usable > kEps) {
                next_completion =
                    std::min(next_completion, now + j->remaining * j->parallelism / j->usable);
            }
        }
        const double next_event = std::min(next_arrival, next_completion);
        if (!std::isfinite(next_event)) {
            throw std::logic_error("simulate_job_stream: no progress (zero usable shares)");
        }
        const double dt = next_event - now;
        for (FluidJob* j : active) {
            j->slot_seconds += j->usable * dt;
            j->entitled_seconds += j->entitled * dt;
            j->remaining -= dt * j->usable / j->parallelism;
            if (j->remaining <= kEps * std::max(j->solo_time, 1.0)) {
                j->remaining = 0.0;
                j->done = true;
                j->finish = next_event;
            }
        }
        now = next_event;
    }

    for (const FluidJob& f : fluid) {
        JobStreamStat& s = out.jobs[f.index];
        s.name = jobs[f.index].name;
        s.priority = f.priority;
        s.arrival = f.arrival;
        s.finish = f.finish;
        s.latency = f.finish - f.arrival;
        s.solo_time = f.solo_time;
        s.parallelism = f.parallelism;
        s.slot_seconds = f.slot_seconds;
        s.entitled_seconds = f.entitled_seconds;
        s.iterations = f.iterations;
        out.makespan = std::max(out.makespan, f.finish);
    }
    return out;
}

}  // namespace hdls::sim
