#pragma once
/// \file workload.hpp
/// Workload traces: per-iteration virtual execution costs with O(1) range
/// sums (the simulator charges a worker `range_cost(b, e)` for executing
/// chunk [b, e)).

#include <cstdint>
#include <span>
#include <vector>

#include "util/stats.hpp"

namespace hdls::sim {

class WorkloadTrace {
public:
    WorkloadTrace() = default;

    /// Takes ownership of per-iteration costs (seconds); all must be >= 0.
    explicit WorkloadTrace(std::vector<double> costs);

    [[nodiscard]] std::int64_t iterations() const noexcept {
        return static_cast<std::int64_t>(costs_.size());
    }

    /// Total serial execution time.
    [[nodiscard]] double total() const noexcept {
        return prefix_.empty() ? 0.0 : prefix_.back();
    }

    /// Cost of iteration i.
    [[nodiscard]] double cost(std::int64_t i) const {
        return costs_.at(static_cast<std::size_t>(i));
    }

    /// Cost of executing [begin, end) (throws on a bad range).
    [[nodiscard]] double range_cost(std::int64_t begin, std::int64_t end) const;

    /// Descriptive statistics of the per-iteration costs.
    [[nodiscard]] util::Summary stats() const { return util::summarize(costs_); }

    [[nodiscard]] std::span<const double> costs() const noexcept { return costs_; }

private:
    std::vector<double> costs_;
    std::vector<double> prefix_;  // prefix_[i] = sum of costs_[0..i)
};

}  // namespace hdls::sim
