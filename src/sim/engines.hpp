#pragma once
/// \file engines.hpp
/// Internal: the two simulation engines behind sim::simulate().
/// Not part of the public API.

#include "sim/simulator.hpp"

namespace hdls::sim::detail {

/// Worker-level engine: every worker independently pops sub-chunks from its
/// node's shared queue and refills it from the global queue.
///  * polling_lock = true  -> queue access via MPI_Win_lock (PollingLock):
///    the paper's MPI+MPI model.
///  * polling_lock = false -> queue access via an atomic counter
///    (FcfsResource): the OpenMP-nowait future-work model.
///  * any_rank_refills = false restricts global-queue access to worker 0 of
///    each node (MPI_THREAD_FUNNELED).
[[nodiscard]] SimReport simulate_shared_queue(const ClusterSpec& cluster, const SimConfig& config,
                                              const WorkloadTrace& workload, bool polling_lock,
                                              bool any_rank_refills);

/// Node-level engine: per node, a master fetches level-1 chunks and a
/// thread team executes each under the intra schedule with an implicit
/// barrier per chunk — the MPI+OpenMP baseline (paper Figure 2).
[[nodiscard]] SimReport simulate_hybrid_barrier(const ClusterSpec& cluster,
                                                const SimConfig& config,
                                                const WorkloadTrace& workload);

}  // namespace hdls::sim::detail
