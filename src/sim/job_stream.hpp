#pragma once
/// \file job_stream.hpp
/// Deterministic pricing of *concurrent* job streams over the simulated
/// cluster — the virtual-time counterpart of core::JobService.
///
/// The discrete-event engines price one loop at a time; pricing a
/// multi-tenant mix event-by-event would entangle the engines with the
/// governor. Instead, job streams are priced with a two-stage fluid
/// model:
///
///  1. Each job is priced solo by the chosen engine (simulate()), which
///     yields its solo parallel time T_j and busy time B_j. The ratio
///     P_j = B_j / T_j is the job's mean exploitable parallelism — how
///     many of the cluster's W slots it can actually keep busy, with the
///     engine's scheduling overheads, lock contention and load imbalance
///     already priced in.
///  2. A fluid processor-sharing loop replays core::SlotGovernor's
///     arithmetic in virtual time: at every arrival/completion event the
///     W slots are re-apportioned across the active jobs by
///     dls::shard_partition with weight = priority × remaining work, each
///     job's *usable* share is capped at P_j, surplus slots are
///     redistributed work-conservingly (water-filling), and each job
///     progresses at usable/P_j of its solo rate until the next event.
///
/// Both models share the same apportionment code as the real service, so
/// the simulator predicts the same entitlement splits the governor
/// enforces — tests assert that correspondence.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace hdls::sim {

/// One job of the stream: a workload plus stream-level attributes.
struct StreamJob {
    std::string name;
    WorkloadTrace workload;
    double priority = 1.0;  ///< fair-share weight multiplier (> 0)
    double arrival = 0.0;   ///< virtual submit time, seconds (>= 0)
    /// Per-job scheduling override; the stream's base config otherwise.
    std::optional<SimConfig> config;
};

/// Per-job outcome of a stream pricing.
struct JobStreamStat {
    std::string name;
    double priority = 1.0;
    double arrival = 0.0;
    double finish = 0.0;
    double latency = 0.0;         ///< finish - arrival
    double solo_time = 0.0;       ///< T_j: parallel time if run alone
    double parallelism = 0.0;     ///< P_j: mean slots the job can use
    double slot_seconds = 0.0;    ///< ∫ usable-share dt
    double entitled_seconds = 0.0;///< ∫ apportioned-share dt
    std::int64_t iterations = 0;
};

struct JobStreamReport {
    int slots = 0;               ///< W = cluster.total_workers()
    std::vector<JobStreamStat> jobs;
    double makespan = 0.0;       ///< last finish (stream completion time)
    double serial_time = 0.0;    ///< Σ T_j: back-to-back execution time
    /// serial_time / makespan: > 1 means multiplexing beat serial.
    [[nodiscard]] double aggregate_speedup() const noexcept {
        return makespan > 0.0 ? serial_time / makespan : 0.0;
    }
    [[nodiscard]] double latency_quantile(double q) const;
    [[nodiscard]] double p50_latency() const { return latency_quantile(0.50); }
    [[nodiscard]] double p99_latency() const { return latency_quantile(0.99); }
};

/// Prices the job stream on the given engine. Jobs with equal arrivals
/// run concurrently from t=0 of the overlap. Throws std::invalid_argument
/// for empty streams, non-positive priorities or negative arrivals.
[[nodiscard]] JobStreamReport simulate_job_stream(ExecModel model,
                                                  const ClusterSpec& cluster,
                                                  const SimConfig& base,
                                                  const std::vector<StreamJob>& jobs);

}  // namespace hdls::sim
