/// \file engine_shared_queue.cpp
/// Worker-level simulation engine (MPI+MPI and OpenMP-nowait models).
///
/// Discrete-event scheme: every worker is a process; the event queue holds
/// (ready-time, worker) pairs and always advances the globally earliest
/// worker, so shared-state mutations happen in virtual-time order. Each
/// event processes one *transaction*: a queue access, optionally followed
/// by a global refill and the execution of the obtained sub-chunk.
/// Serialization points (the node queue lock/counter, the global queue
/// target) are modelled as resources whose busy-until times chain
/// transactions in processing order.

#include <cmath>
#include <limits>
#include <queue>
#include <vector>

#include "dls/chunk_formulas.hpp"
#include "sim/engine_trace.hpp"
#include "sim/engines.hpp"
#include "sim/inter_source.hpp"
#include "sim/resources.hpp"

namespace hdls::sim::detail {

namespace {

struct ChunkState {
    std::int64_t start = 0;
    std::int64_t size = 0;
    std::int64_t sub_step = 0;
    std::int64_t sub_scheduled = 0;
    double visible_at = 0.0;  ///< push completion; invisible to pops before
};

struct NodeState {
    explicit NodeState(const CostModel& costs)
        : lock(costs.lock_hold_s(), costs.lock_poll_s(), costs.lock_attempt_s()),
          counter(costs.omp_dequeue_s()) {}

    PollingLock lock;      // MPI_Win_lock model
    FcfsResource counter;  // atomic-counter model
    std::vector<ChunkState> chunks;
    std::size_t head = 0;            ///< first chunk that may hold work
    std::int64_t unallocated = 0;    ///< unassigned iterations in the queue
};

struct QueueAccess {
    double granted = 0.0;   ///< inspection time (queue state as of here)
    double released = 0.0;  ///< worker may proceed from here
    double wait = 0.0;      ///< contention wait
};

struct Event {
    double time;
    int worker;
    friend bool operator>(const Event& a, const Event& b) {
        return a.time != b.time ? a.time > b.time : a.worker > b.worker;
    }
};

}  // namespace

SimReport simulate_shared_queue(const ClusterSpec& cluster, const SimConfig& config,
                                const WorkloadTrace& workload, bool polling_lock,
                                bool any_rank_refills) {
    const CostModel& costs = cluster.costs;
    const int total_workers = cluster.total_workers();
    const std::int64_t n = workload.iterations();

    SimReport report;
    report.nodes = cluster.nodes;
    report.workers_per_node = cluster.workers_per_node;
    report.topology = cluster.effective_tree();
    report.total_iterations = n;
    report.workers.assign(static_cast<std::size_t>(total_workers), SimWorker{});
    for (int w = 0; w < total_workers; ++w) {
        report.workers[static_cast<std::size_t>(w)].node = w / cluster.workers_per_node;
        report.workers[static_cast<std::size_t>(w)].worker_in_node =
            w % cluster.workers_per_node;
    }
    EngineTrace engine_trace(cluster, config);
    const auto attach_trace = [&] {
        engine_trace.attach(report,
                            polling_lock ? ExecModel::MpiMpi : ExecModel::MpiOpenMpNowait,
                            cluster, config, n);
    };

    if (n == 0) {
        attach_trace();
        return report;
    }

    // The whole hierarchy above the leaf queues (root backend + any relay
    // levels of a deep tree), priced per level in one shared place.
    const SimPlan plan = resolve_sim_plan(cluster, config);
    const dls::Technique leaf_technique = plan.levels.back().technique;
    const int leaf_level = plan.depth() - 1;
    HierarchicalSource source(cluster, config, plan, n);

    std::vector<NodeState> nodes(static_cast<std::size_t>(cluster.nodes), NodeState(costs));

    // Retry period of a worker that must wait for work to appear without a
    // known wake-up time (nowait non-masters): the natural software poll.
    const double poll_quantum = std::max(costs.lock_poll_s(), 1e-6);

    // Fail-stop injection (SimConfig::failure): while armed, the kill fires
    // at the first event after `trigger_iters` iterations have been
    // assigned to workers. Iterations count as assigned at sub-chunk
    // allocation (pop_visible), the sim's chunk boundary.
    const SimFailure& fail = config.failure;
    bool failure_armed = fail.enabled();
    const auto trigger_iters =
        std::min<std::int64_t>(n, static_cast<std::int64_t>(
                                      fail.at_fraction * static_cast<double>(n)));
    std::int64_t assigned = 0;
    std::vector<char> node_dead(static_cast<std::size_t>(cluster.nodes), 0);

    std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
    for (int w = 0; w < total_workers; ++w) {
        events.push({0.0, w});
    }

    // Accesses the node queue and, if work is visible, allocates the next
    // sub-chunk via the intra technique's step-indexed formula.
    const auto access_queue = [&](NodeState& node, double t) -> QueueAccess {
        if (polling_lock) {
            const PollingLock::Grant g = node.lock.acquire(t);
            return {g.acquired, g.released, g.wait};
        }
        const double before = node.counter.busy_until();
        const double done = node.counter.acquire(t);
        return {done, done, std::max(0.0, before - t)};
    };

    const auto pop_visible = [&](NodeState& node, double at)
        -> std::optional<std::pair<std::int64_t, std::int64_t>> {
        while (node.head < node.chunks.size() &&
               node.chunks[node.head].sub_scheduled >= node.chunks[node.head].size) {
            ++node.head;  // retire fully-allocated chunks
        }
        for (std::size_t i = node.head; i < node.chunks.size(); ++i) {
            ChunkState& c = node.chunks[i];
            if (c.sub_scheduled >= c.size || c.visible_at > at) {
                continue;
            }
            dls::LoopParams p;
            p.total_iterations = c.size;
            p.workers = cluster.workers_per_node;
            p.min_chunk = config.min_chunk;
            const std::int64_t hint =
                dls::chunk_size_for_step(leaf_technique, p, c.sub_step);
            const std::int64_t take =
                hint > 0 ? std::min(hint, c.size - c.sub_scheduled) : c.size - c.sub_scheduled;
            const std::int64_t begin = c.start + c.sub_scheduled;
            c.sub_scheduled += take;
            ++c.sub_step;
            node.unallocated -= take;
            assigned += take;
            return std::pair{begin, begin + take};
        }
        return std::nullopt;
    };

    // Waiting spans are coalesced per worker: one BarrierWait event from
    // the first empty-handed wake-up to the wake-up that found work (or
    // terminated), mirroring the real executor's recording.
    std::vector<double> wait_from(static_cast<std::size_t>(total_workers), -1.0);
    // Asynchronous prefetching (SimConfig::prefetch): the compute time of
    // the sub-chunk a worker just executed is the window its next
    // upper-level acquisition can hide under. Adaptive roots are never
    // discounted — the real prefetcher does not cross a refill whose flush
    // must see the in-flight chunk's feedback.
    const bool prefetch = config.prefetch && !source.wants_feedback();
    std::vector<double> overlap_credit(static_cast<std::size_t>(total_workers), 0.0);
    // Per-worker "accumulated feedback not yet flushed" flag, mirroring
    // the real executor's flush-before-refill cadence.
    std::vector<char> feedback_pending(static_cast<std::size_t>(total_workers), 0);

    int finished = 0;
    while (finished < total_workers) {
        const Event ev = events.top();
        events.pop();
        SimWorker& w = report.workers[static_cast<std::size_t>(ev.worker)];
        NodeState& node = nodes[static_cast<std::size_t>(w.node)];
        const double t = ev.time;
        trace::WorkerTracer& tracer = engine_trace.tracer(ev.worker);
        const bool tracing = tracer.enabled();
        // Fire the injected failure: mark the node dead and re-queue the
        // unassigned remainders of its local queue on the survivors,
        // round-robin, visible once the virtual detection latency elapses
        // (a reclaimed remainder restarts as a fresh chunk, mirroring the
        // real claimer re-leasing a reclaimed chunk under its own lease).
        if (failure_armed && assigned >= trigger_iters) {
            failure_armed = false;
            node_dead[static_cast<std::size_t>(fail.node)] = 1;
            NodeState& dead = nodes[static_cast<std::size_t>(fail.node)];
            const double visible = t + std::max(0.0, fail.detect_delay_s);
            int target = fail.node;
            for (std::size_t i = dead.head; i < dead.chunks.size(); ++i) {
                ChunkState& c = dead.chunks[i];
                // Remainders not yet visible at the kill instant transfer
                // too: the push lands in shared memory, which outlives the
                // dead node's ranks (hence the max() on visibility below).
                const std::int64_t rem = c.size - c.sub_scheduled;
                if (rem <= 0) {
                    continue;
                }
                do {
                    target = (target + 1) % cluster.nodes;
                } while (target == fail.node);
                NodeState& dst = nodes[static_cast<std::size_t>(target)];
                dst.chunks.push_back(
                    {c.start + c.sub_scheduled, rem, 0, 0, std::max(visible, c.visible_at)});
                dst.unallocated += rem;
                report.reclaimed_iterations += rem;
                c.sub_scheduled = c.size;
            }
            dead.unallocated = 0;
        }
        // The overlap window earned by the previous transaction's compute;
        // consumed (and reset) by this transaction's refill, if any.
        double& credit_slot = overlap_credit[static_cast<std::size_t>(ev.worker)];
        const double my_credit = prefetch ? credit_slot : -1.0;
        credit_slot = 0.0;
        double& waiting_since = wait_from[static_cast<std::size_t>(ev.worker)];
        const bool record_probe = tracing && waiting_since < 0.0;
        const auto close_wait = [&](double end) {
            if (tracing && waiting_since >= 0.0) {
                tracer.record(trace::EventKind::BarrierWait, waiting_since, end);
                waiting_since = -1.0;
            }
        };

        // A worker of the killed node fail-stops at its next event — the
        // chunk boundary after its in-flight sub-chunk, matching the real
        // chaos seam's boundary placement.
        if (node_dead[static_cast<std::size_t>(w.node)] != 0) {
            close_wait(t);
            if (tracing) {
                tracer.instant(trace::EventKind::Terminate, t);
            }
            w.finish = t;
            ++finished;
            continue;
        }

        // ---- stage 2: try to pop a sub-chunk from the node queue --------
        const QueueAccess acc = access_queue(node, t);
        w.lock_wait += acc.wait;
        w.overhead += acc.released - t;
        if (const auto sub = pop_visible(node, acc.granted)) {
            close_wait(t);
            const double compute =
                workload.range_cost(sub->first, sub->second) / cluster.speed(w.node);
            w.busy += compute;
            w.overhead += costs.chunk_overhead_s();
            w.iterations += sub->second - sub->first;
            ++w.sub_chunks;
            if (tracing) {
                tracer.record(trace::EventKind::LocalPop, t, acc.released, sub->first,
                              sub->second, acc.wait, leaf_level);
                const double exec0 = acc.released + costs.chunk_overhead_s();
                tracer.instant(trace::EventKind::ChunkExecBegin, exec0, sub->first,
                               sub->second);
                tracer.instant(trace::EventKind::ChunkExecEnd, exec0 + compute, sub->first,
                               sub->second);
            }
            if (source.wants_feedback()) {
                // Local accumulation in the real executor: free here; the
                // flush is priced at the next refill.
                source.report(w.node, sub->second - sub->first, compute,
                              acc.released - t + costs.chunk_overhead_s());
                feedback_pending[static_cast<std::size_t>(ev.worker)] = 1;
            }
            credit_slot = compute;
            events.push({acc.released + costs.chunk_overhead_s() + compute, ev.worker});
            continue;
        }
        if (record_probe) {
            tracer.record(trace::EventKind::LocalPop, t, acc.released, -1, -1, acc.wait,
                          leaf_level);
        }

        double now = acc.released;

        // ---- stage 1: queue drained; refill from the level above --------
        const bool may_refill = any_rank_refills || w.worker_in_node == 0;
        if (may_refill && !source.exhausted(w.node)) {
            if (feedback_pending[static_cast<std::size_t>(ev.worker)] != 0) {
                // Pre-acquire feedback flush: three accumulator RMA updates
                // (the AWF weight-refresh reads ride the priced global
                // acquisition below — a deliberate simplification).
                const double flush = feedback_flush_s(costs);
                w.overhead += flush;
                now += flush;
                feedback_pending[static_cast<std::size_t>(ev.worker)] = 0;
            }
            if (record_probe) {
                tracer.instant(trace::EventKind::RefillBegin, now, 0, 0, leaf_level);
            }
            double done = now;
            double retry_at = 0.0;
            PrefetchCharge pf;
            const auto take = source.acquire(w.node, now, &done, &retry_at, my_credit, &pf);
            w.overhead += done - now;
            if (take && my_credit >= 0.0 && tracing) {
                tracer.record(trace::EventKind::Prefetch, done, done, pf.hit ? 1 : 0,
                              take->start, pf.hidden, take->level);
            }
            if (!take && std::isfinite(retry_at)) {
                // Work is in flight somewhere up the branch (pushed but not
                // yet visible at our inspection time): wake when it lands.
                if (record_probe) {
                    tracer.instant(trace::EventKind::RefillEnd, done, 0, 0, leaf_level);
                }
                const double next = std::max(done, retry_at);
                w.idle += next - done;
                if (tracing && waiting_since < 0.0) {
                    waiting_since = done;
                }
                events.push({next, ev.worker});
                continue;
            }
            if (!take) {
                if (record_probe) {
                    tracer.record(trace::EventKind::GlobalAcquire, now, done, 0, 0);
                    tracer.instant(trace::EventKind::RefillEnd, done, 0, 0, leaf_level);
                }
                now = done;
            } else {
                const std::int64_t start = take->start;
                const std::int64_t size = take->size;
                ++w.global_refills;
                close_wait(now);
                if (tracing) {
                    // Under prefetch pricing `done` is the discounted
                    // completion; the recorded epoch keeps the physical
                    // flight time (mirroring the real executor, whose
                    // prefetched acquire epoch is raw but off the critical
                    // path) — the hidden share rides the Prefetch event.
                    const double epoch_end = my_credit >= 0.0 ? now + pf.raw : done;
                    tracer.record(take->stolen ? trace::EventKind::Steal
                                               : trace::EventKind::GlobalAcquire,
                                  now, epoch_end, start, size, 0.0, take->level);
                }
                now = done;
                // Push + pop own first sub-chunk in one queue access.
                const QueueAccess push = access_queue(node, now);
                w.lock_wait += push.wait;
                w.overhead += push.released - now;
                node.chunks.push_back({start, size, 0, 0, push.released});
                node.unallocated += size;
                const auto sub = pop_visible(node, push.released);
                // The fresh chunk is visible to us inside the epoch.
                const double compute =
                    sub ? workload.range_cost(sub->first, sub->second) /
                              cluster.speed(w.node)
                        : 0.0;
                if (sub) {
                    w.busy += compute;
                    w.overhead += costs.chunk_overhead_s();
                    w.iterations += sub->second - sub->first;
                    ++w.sub_chunks;
                }
                if (tracing) {
                    tracer.record(trace::EventKind::LocalPop, now, push.released,
                                  sub ? sub->first : -1, sub ? sub->second : -1,
                                  push.wait, leaf_level);
                    tracer.instant(trace::EventKind::RefillEnd, push.released, start,
                                   size, leaf_level);
                    if (sub) {
                        const double exec0 = push.released + costs.chunk_overhead_s();
                        tracer.instant(trace::EventKind::ChunkExecBegin, exec0,
                                       sub->first, sub->second);
                        tracer.instant(trace::EventKind::ChunkExecEnd, exec0 + compute,
                                       sub->first, sub->second);
                    }
                }
                if (sub && source.wants_feedback()) {
                    source.report(w.node, sub->second - sub->first, compute,
                                  push.released - now + costs.chunk_overhead_s());
                    feedback_pending[static_cast<std::size_t>(ev.worker)] = 1;
                }
                if (sub) {
                    credit_slot = compute;
                }
                events.push(
                    {push.released + costs.chunk_overhead_s() + compute, ev.worker});
                continue;
            }
        }

        // ---- wait for in-flight work, keep polling, or terminate --------
        if (node.unallocated > 0) {
            // Work exists but was not yet visible at our inspection time;
            // wake when the earliest pending push completes.
            double earliest = std::numeric_limits<double>::infinity();
            for (std::size_t i = node.head; i < node.chunks.size(); ++i) {
                const ChunkState& c = node.chunks[i];
                if (c.sub_scheduled < c.size) {
                    earliest = std::min(earliest, c.visible_at);
                }
            }
            const double next = std::max(now, earliest);
            w.idle += next - now;
            if (tracing && waiting_since < 0.0) {
                waiting_since = now;
            }
            events.push({next, ev.worker});
            continue;
        }
        if (!source.exhausted(w.node)) {
            // Only reachable for nowait non-masters: the pool is empty and
            // the master has not refilled yet — poll again later.
            w.idle += poll_quantum;
            if (tracing && waiting_since < 0.0) {
                waiting_since = now;
            }
            events.push({now + poll_quantum, ev.worker});
            continue;
        }
        if (failure_armed) {
            // An armed failure has not fired yet: reclaimed remainders may
            // still land on this node, so keep polling instead of
            // terminating (the sim analogue of the reclamation drain).
            w.idle += poll_quantum;
            if (tracing && waiting_since < 0.0) {
                waiting_since = now;
            }
            events.push({now + poll_quantum, ev.worker});
            continue;
        }
        close_wait(now);
        if (tracing) {
            tracer.instant(trace::EventKind::Terminate, now);
        }
        w.finish = now;
        ++finished;
    }

    double max_finish = 0.0;
    for (const auto& w : report.workers) {
        max_finish = std::max(max_finish, w.finish);
    }
    report.parallel_time = max_finish;
    attach_trace();
    return report;
}

}  // namespace hdls::sim::detail
