#pragma once
/// \file engine_trace.hpp
/// Internal: shared virtual-time tracing scaffolding of the simulation
/// engines. The single simulation thread is the sole producer for every
/// per-worker buffer (trivially satisfying the SPSC discipline) and
/// timestamps are the simulator's virtual clock.

#include <memory>
#include <string_view>
#include <vector>

#include "sim/simulator.hpp"
#include "trace/recorder.hpp"

namespace hdls::sim::detail {

class EngineTrace {
public:
    /// Creates the session (and one tracer per worker) only when
    /// config.trace is set; otherwise every tracer is a disabled no-op.
    EngineTrace(const ClusterSpec& cluster, const SimConfig& config) {
        tracers_.resize(static_cast<std::size_t>(cluster.total_workers()));
        if (!config.trace) {
            return;
        }
        session_ = std::make_unique<trace::TraceSession>(cluster.total_workers(),
                                                         config.trace_capacity);
        for (int w = 0; w < cluster.total_workers(); ++w) {
            tracers_[static_cast<std::size_t>(w)] =
                session_->tracer(w, w / cluster.workers_per_node);
        }
    }

    [[nodiscard]] trace::WorkerTracer& tracer(int worker) noexcept {
        return tracers_[static_cast<std::size_t>(worker)];
    }

    /// Merges the recorded events into report.trace (no-op when disabled).
    void attach(SimReport& report, ExecModel model, const ClusterSpec& cluster,
                const SimConfig& config, std::int64_t total_iterations) {
        if (!session_) {
            return;
        }
        report.trace = session_->finish(
            {.approach = std::string(exec_model_name(model)),
             .inter = std::string(dls::technique_name(config.inter)),
             .intra = std::string(dls::technique_name(config.intra)),
             .nodes = cluster.nodes,
             .workers_per_node = cluster.workers_per_node,
             .total_iterations = total_iterations,
             .job = -1,
             .job_name = {},
             .jobs = {}});
    }

private:
    std::unique_ptr<trace::TraceSession> session_;
    std::vector<trace::WorkerTracer> tracers_;
};

}  // namespace hdls::sim::detail
