#pragma once
/// \file cost_model.hpp
/// Timing parameters of the simulated cluster.
///
/// The simulator reproduces the paper's testbed (miniHPC: 16 ranks/node,
/// Omni-Path fabric) in *virtual time*. Every knob below is a measured-
/// order-of-magnitude default, overridable from every bench binary, so the
/// sensitivity of the paper's conclusions to each cost can be explored
/// (see bench_ablation_lock_polling).
///
/// The two costs that carry the paper's argument:
///  * `shmem_lock_poll_us` — MPI_Win_lock is implemented with lock-attempt
///    polling (Zhao, Balaji & Gropp, ISPDC'16; the paper's ref [38]): a
///    blocked origin retries on a period. Under contention the grant time
///    quantizes up to this period, which is why intra-node SS (one lock
///    epoch per iteration) collapses under MPI+MPI.
///  * `omp_dequeue_us` — the OpenMP runtime's dynamic/guided dequeue is a
///    process-local atomic, one-to-two orders of magnitude cheaper; the
///    paper: "the scheduling overhead associated with using MPI shared-
///    memory to implement DLS techniques is higher than OpenMP".

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace hdls::sim {

/// All times in seconds (suffix _us marks knobs expressed in microseconds
/// for readability; the accessors convert).
struct CostModel {
    /// One-way worker<->global-queue software+fabric latency per RMA op.
    double internode_rma_us = 3.0;
    /// One-way latency of an RMA atomic on a *node-local* shared window —
    /// the shard-acquire path of the sharded inter-node backend, which
    /// never leaves the node while its shard lasts.
    double intranode_rma_us = 0.3;
    /// Serialization at the global queue's target per atomic op.
    double global_queue_service_us = 0.8;
    /// Exclusive-lock hold time on the node-local queue window
    /// (grant + queue update + unlock).
    double shmem_lock_hold_us = 1.2;
    /// Lock-attempt polling period of blocked MPI_Win_lock origins.
    double shmem_lock_poll_us = 5.0;
    /// Target-agent processing time of one lock-attempt message. Each
    /// blocked origin keeps a pending attempt queued, so a contended
    /// handoff costs poll/2 + attempts * waiters — the superlinear
    /// degradation of ref [38]. Comparable to the RMA software path.
    double shmem_lock_attempt_us = 3.0;
    /// OpenMP worksharing dequeue (atomic fetch-add) service time.
    double omp_dequeue_us = 0.15;
    /// OpenMP barrier: base + per-thread component.
    double omp_barrier_base_us = 1.5;
    double omp_barrier_per_thread_us = 0.08;
    /// Chunk bookkeeping common to both models (loop setup, index math).
    double chunk_overhead_us = 0.5;

    [[nodiscard]] double rma_s() const noexcept { return internode_rma_us * 1e-6; }
    [[nodiscard]] double intranode_rma_s() const noexcept { return intranode_rma_us * 1e-6; }
    [[nodiscard]] double global_service_s() const noexcept {
        return global_queue_service_us * 1e-6;
    }
    [[nodiscard]] double lock_hold_s() const noexcept { return shmem_lock_hold_us * 1e-6; }
    [[nodiscard]] double lock_poll_s() const noexcept { return shmem_lock_poll_us * 1e-6; }
    [[nodiscard]] double lock_attempt_s() const noexcept { return shmem_lock_attempt_us * 1e-6; }
    [[nodiscard]] double omp_dequeue_s() const noexcept { return omp_dequeue_us * 1e-6; }
    [[nodiscard]] double barrier_s(int threads) const noexcept {
        return (omp_barrier_base_us + omp_barrier_per_thread_us * threads) * 1e-6;
    }
    [[nodiscard]] double chunk_overhead_s() const noexcept { return chunk_overhead_us * 1e-6; }

    void validate() const {
        if (internode_rma_us < 0 || intranode_rma_us < 0 || global_queue_service_us < 0 ||
            shmem_lock_hold_us < 0 ||
            shmem_lock_poll_us < 0 || shmem_lock_attempt_us < 0 || omp_dequeue_us < 0 ||
            omp_barrier_base_us < 0 || omp_barrier_per_thread_us < 0 || chunk_overhead_us < 0) {
            throw std::invalid_argument("CostModel: all costs must be >= 0");
        }
    }
};

/// The simulated machine: `nodes` x `workers_per_node` (paper: 2..16 x 16).
struct ClusterSpec {
    int nodes = 2;
    int workers_per_node = 16;
    CostModel costs{};
    /// Relative per-node execution speeds (empty = all 1.0): a node with
    /// speed 0.5 executes every iteration twice as slowly. Models the
    /// heterogeneous/perturbed clusters the adaptive techniques target.
    std::vector<double> node_speed;

    [[nodiscard]] int total_workers() const noexcept { return nodes * workers_per_node; }

    /// Execution-speed factor of `node` (compute time = cost / speed).
    [[nodiscard]] double speed(int node) const noexcept {
        return node_speed.empty() ? 1.0 : node_speed[static_cast<std::size_t>(node)];
    }

    void validate() const {
        if (nodes < 1 || workers_per_node < 1) {
            throw std::invalid_argument("ClusterSpec: shape must be positive");
        }
        if (!node_speed.empty()) {
            if (node_speed.size() != static_cast<std::size_t>(nodes)) {
                throw std::invalid_argument(
                    "ClusterSpec: node_speed size must equal the node count");
            }
            for (const double s : node_speed) {
                if (!(s > 0.0)) {
                    throw std::invalid_argument("ClusterSpec: node speeds must be > 0");
                }
            }
        }
        costs.validate();
    }
};

}  // namespace hdls::sim
