#pragma once
/// \file cost_model.hpp
/// Timing parameters of the simulated cluster.
///
/// The simulator reproduces the paper's testbed (miniHPC: 16 ranks/node,
/// Omni-Path fabric) in *virtual time*. Every knob below is a measured-
/// order-of-magnitude default, overridable from every bench binary, so the
/// sensitivity of the paper's conclusions to each cost can be explored
/// (see bench_ablation_lock_polling).
///
/// The two costs that carry the paper's argument:
///  * `shmem_lock_poll_us` — MPI_Win_lock is implemented with lock-attempt
///    polling (Zhao, Balaji & Gropp, ISPDC'16; the paper's ref [38]): a
///    blocked origin retries on a period. Under contention the grant time
///    quantizes up to this period, which is why intra-node SS (one lock
///    epoch per iteration) collapses under MPI+MPI.
///  * `omp_dequeue_us` — the OpenMP runtime's dynamic/guided dequeue is a
///    process-local atomic, one-to-two orders of magnitude cheaper; the
///    paper: "the scheduling overhead associated with using MPI shared-
///    memory to implement DLS techniques is higher than OpenMP".

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "minimpi/topology.hpp"

namespace hdls::sim {

/// All times in seconds (suffix _us marks knobs expressed in microseconds
/// for readability; the accessors convert).
struct CostModel {
    /// One-way worker<->global-queue software+fabric latency per RMA op.
    double internode_rma_us = 3.0;
    /// One-way latency of an RMA atomic on a *node-local* shared window —
    /// the shard-acquire path of the sharded inter-node backend, which
    /// never leaves the node while its shard lasts.
    double intranode_rma_us = 0.3;
    /// Serialization at the global queue's target per atomic op.
    double global_queue_service_us = 0.8;
    /// Exclusive-lock hold time on the node-local queue window
    /// (grant + queue update + unlock).
    double shmem_lock_hold_us = 1.2;
    /// Lock-attempt polling period of blocked MPI_Win_lock origins.
    double shmem_lock_poll_us = 5.0;
    /// Target-agent processing time of one lock-attempt message. Each
    /// blocked origin keeps a pending attempt queued, so a contended
    /// handoff costs poll/2 + attempts * waiters — the superlinear
    /// degradation of ref [38]. Comparable to the RMA software path.
    double shmem_lock_attempt_us = 3.0;
    /// OpenMP worksharing dequeue (atomic fetch-add) service time.
    double omp_dequeue_us = 0.15;
    /// OpenMP barrier: base + per-thread component.
    double omp_barrier_base_us = 1.5;
    double omp_barrier_per_thread_us = 0.08;
    /// Chunk bookkeeping common to both models (loop setup, index math).
    double chunk_overhead_us = 0.5;
    /// Issue + completion cost of one *nonblocking* acquisition under
    /// asynchronous prefetching (SimConfig::prefetch): posting the request
    /// and the later test/wait are on the critical path, but the RMA
    /// flight time itself overlaps chunk execution — a prefetched acquire
    /// charges prefetch_issue_us + max(0, acquire_latency -
    /// compute_remaining) instead of the full latency.
    double prefetch_issue_us = 0.2;
    /// Per-level one-way RMA latency of a deep topology tree's scheduling
    /// windows, outermost level first (level 0 = the root queue, level 1
    /// the relay inside a level-0 group, ...). Lets a rack-level window
    /// cost more than a socket-level one. Levels beyond the vector (or the
    /// whole vector when empty) fall back to internode_rma_us — which
    /// keeps the classic two-level pricing byte-identical.
    std::vector<double> level_rma_us;

    [[nodiscard]] double rma_s() const noexcept { return internode_rma_us * 1e-6; }
    /// One-way RMA latency of the level-`level` scheduling window.
    [[nodiscard]] double level_rma_s(int level) const noexcept {
        if (level >= 0 && static_cast<std::size_t>(level) < level_rma_us.size()) {
            return level_rma_us[static_cast<std::size_t>(level)] * 1e-6;
        }
        return rma_s();
    }
    [[nodiscard]] double intranode_rma_s() const noexcept { return intranode_rma_us * 1e-6; }
    [[nodiscard]] double global_service_s() const noexcept {
        return global_queue_service_us * 1e-6;
    }
    [[nodiscard]] double lock_hold_s() const noexcept { return shmem_lock_hold_us * 1e-6; }
    [[nodiscard]] double lock_poll_s() const noexcept { return shmem_lock_poll_us * 1e-6; }
    [[nodiscard]] double lock_attempt_s() const noexcept { return shmem_lock_attempt_us * 1e-6; }
    [[nodiscard]] double omp_dequeue_s() const noexcept { return omp_dequeue_us * 1e-6; }
    [[nodiscard]] double barrier_s(int threads) const noexcept {
        return (omp_barrier_base_us + omp_barrier_per_thread_us * threads) * 1e-6;
    }
    [[nodiscard]] double chunk_overhead_s() const noexcept { return chunk_overhead_us * 1e-6; }
    [[nodiscard]] double prefetch_issue_s() const noexcept { return prefetch_issue_us * 1e-6; }

    void validate() const {
        if (internode_rma_us < 0 || intranode_rma_us < 0 || global_queue_service_us < 0 ||
            shmem_lock_hold_us < 0 ||
            shmem_lock_poll_us < 0 || shmem_lock_attempt_us < 0 || omp_dequeue_us < 0 ||
            omp_barrier_base_us < 0 || omp_barrier_per_thread_us < 0 ||
            chunk_overhead_us < 0 || prefetch_issue_us < 0) {
            throw std::invalid_argument("CostModel: all costs must be >= 0");
        }
        for (const double v : level_rma_us) {
            if (v < 0) {
                throw std::invalid_argument("CostModel: all costs must be >= 0");
            }
        }
    }
};

/// The simulated machine: `nodes` x `workers_per_node` (paper: 2..16 x 16),
/// optionally refined into a deeper topology tree.
struct ClusterSpec {
    int nodes = 2;
    int workers_per_node = 16;
    CostModel costs{};
    /// Relative per-node execution speeds (empty = all 1.0): a node with
    /// speed 0.5 executes every iteration twice as slowly. Models the
    /// heterogeneous/perturbed clusters the adaptive techniques target.
    std::vector<double> node_speed;
    /// Machine tree, outermost level first (e.g. racks=2, nodes=4,
    /// cores=16). Empty means the classic two-level {nodes, cores} tree.
    /// When set, the fan-outs must multiply to total_workers(), the
    /// innermost fan-out must equal workers_per_node, and `nodes` must
    /// equal the number of leaf groups.
    std::vector<minimpi::TopologyLevel> tree;

    [[nodiscard]] int total_workers() const noexcept { return nodes * workers_per_node; }

    /// The effective tree (the implied {nodes, cores} one when unset).
    [[nodiscard]] std::vector<minimpi::TopologyLevel> effective_tree() const {
        if (!tree.empty()) {
            return tree;
        }
        return {{"nodes", nodes}, {"cores", workers_per_node}};
    }

    /// Execution-speed factor of `node` (compute time = cost / speed).
    [[nodiscard]] double speed(int node) const noexcept {
        return node_speed.empty() ? 1.0 : node_speed[static_cast<std::size_t>(node)];
    }

    void validate() const {
        if (nodes < 1 || workers_per_node < 1) {
            throw std::invalid_argument("ClusterSpec: shape must be positive");
        }
        if (!tree.empty()) {
            if (tree.size() < 2) {
                throw std::invalid_argument(
                    "ClusterSpec: a topology tree needs at least two levels");
            }
            const minimpi::Topology topo = minimpi::Topology::tree(tree);
            topo.validate();
            if (tree.back().fan_out != workers_per_node) {
                throw std::invalid_argument(
                    "ClusterSpec: innermost fan-out must equal workers_per_node");
            }
            if (topo.tree_ranks() != total_workers()) {
                throw std::invalid_argument(
                    "ClusterSpec: tree fan-outs must multiply to the worker count");
            }
        }
        if (!node_speed.empty()) {
            if (node_speed.size() != static_cast<std::size_t>(nodes)) {
                throw std::invalid_argument(
                    "ClusterSpec: node_speed size must equal the node count");
            }
            for (const double s : node_speed) {
                if (!(s > 0.0)) {
                    throw std::invalid_argument("ClusterSpec: node speeds must be > 0");
                }
            }
        }
        costs.validate();
    }
};

}  // namespace hdls::sim
