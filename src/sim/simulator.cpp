#include "sim/simulator.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <string>

#include "metrics/metrics.hpp"
#include "sim/engines.hpp"
#include "sim/inter_source.hpp"

namespace hdls::sim {

std::string_view exec_model_name(ExecModel m) noexcept {
    switch (m) {
        case ExecModel::MpiMpi:
            return "MPI+MPI";
        case ExecModel::MpiOpenMp:
            return "MPI+OpenMP";
        case ExecModel::MpiOpenMpNowait:
            return "MPI+OpenMP-nowait";
    }
    return "?";
}

std::optional<ExecModel> exec_model_from_string(std::string_view name) noexcept {
    std::string lower(name);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    if (lower == "mpi+mpi" || lower == "mpimpi") {
        return ExecModel::MpiMpi;
    }
    if (lower == "mpi+openmp" || lower == "mpiopenmp") {
        return ExecModel::MpiOpenMp;
    }
    if (lower == "mpi+openmp-nowait" || lower == "nowait") {
        return ExecModel::MpiOpenMpNowait;
    }
    return std::nullopt;
}

SimReport simulate(ExecModel model, const ClusterSpec& cluster, const SimConfig& config,
                   const WorkloadTrace& trace) {
    cluster.validate();
    if (config.min_chunk < 1) {
        throw std::invalid_argument("simulate: min_chunk must be >= 1");
    }
    // Per-level plan: tree/levels consistency, root capability and interior
    // relay forms (throws its own one-line errors).
    const detail::SimPlan plan = detail::resolve_sim_plan(cluster, config);
    if (!dls::supports_step_indexed(plan.levels.back().technique)) {
        throw std::invalid_argument(
            std::string("simulate: intra-node technique ") +
            std::string(dls::technique_name(plan.levels.back().technique)) +
            " lacks a step-indexed form and cannot run under the distributed protocol");
    }
    if (!config.inter_weights.empty() &&
        config.inter_weights.size() !=
            static_cast<std::size_t>(plan.tree.front().fan_out)) {
        throw std::invalid_argument(
            "simulate: inter_weights size must equal the number of level-0 entities");
    }
    for (const double w : config.inter_weights) {
        if (w < 0.0) {
            throw std::invalid_argument("simulate: inter_weights must be >= 0");
        }
    }
    if (config.fac_sigma < 0.0) {
        throw std::invalid_argument("simulate: fac_sigma must be >= 0");
    }
    if (config.fac_mu <= 0.0) {
        throw std::invalid_argument("simulate: fac_mu must be > 0");
    }
    if (config.failure.enabled()) {
        if (config.failure.node >= cluster.nodes) {
            throw std::invalid_argument("simulate: failure.node is outside the cluster");
        }
        if (cluster.nodes < 2) {
            throw std::invalid_argument(
                "simulate: failure injection needs at least one surviving node");
        }
        if (!(config.failure.at_fraction >= 0.0 && config.failure.at_fraction <= 1.0)) {
            throw std::invalid_argument(
                "simulate: failure.at_fraction must be in [0, 1]");
        }
        if (config.failure.detect_delay_s < 0.0) {
            throw std::invalid_argument("simulate: failure.detect_delay_s must be >= 0");
        }
    }
    const metrics::Snapshot before = metrics::registry().snapshot();
    SimReport report;
    switch (model) {
        case ExecModel::MpiMpi:
            report = detail::simulate_shared_queue(cluster, config, trace,
                                                   /*polling_lock=*/true,
                                                   /*any_rank_refills=*/true);
            break;
        case ExecModel::MpiOpenMpNowait:
            report = detail::simulate_shared_queue(cluster, config, trace,
                                                   /*polling_lock=*/false,
                                                   /*any_rank_refills=*/false);
            break;
        case ExecModel::MpiOpenMp:
            report = detail::simulate_hybrid_barrier(cluster, config, trace);
            break;
        default:
            throw std::invalid_argument("simulate: unknown execution model");
    }
    // Mirror the simulated run into the process-wide registry so simulated
    // and real executions export through the same Prometheus/JSON pipeline
    // (level 0 = the inter-node queue, the leaf = sub-chunk execution).
    const metrics::RuntimeMetrics& m = metrics::rt();
    m.exec_chunks->inc(static_cast<std::uint64_t>(report.sub_chunks()));
    m.exec_iterations->inc(static_cast<std::uint64_t>(report.executed_iterations()));
    m.acquires[0]->inc(static_cast<std::uint64_t>(report.global_chunks()));
    m.refills[0]->inc(static_cast<std::uint64_t>(report.global_chunks()));
    report.metrics = metrics::registry().snapshot().delta_since(before);
    return report;
}

}  // namespace hdls::sim
