#include "sim/workload.hpp"

#include <stdexcept>

namespace hdls::sim {

WorkloadTrace::WorkloadTrace(std::vector<double> costs) : costs_(std::move(costs)) {
    prefix_.resize(costs_.size() + 1);
    prefix_[0] = 0.0;
    for (std::size_t i = 0; i < costs_.size(); ++i) {
        if (costs_[i] < 0.0) {
            throw std::invalid_argument("WorkloadTrace: negative iteration cost");
        }
        prefix_[i + 1] = prefix_[i] + costs_[i];
    }
}

double WorkloadTrace::range_cost(std::int64_t begin, std::int64_t end) const {
    if (begin < 0 || end < begin || end > iterations()) {
        throw std::out_of_range("WorkloadTrace::range_cost");
    }
    return prefix_[static_cast<std::size_t>(end)] - prefix_[static_cast<std::size_t>(begin)];
}

}  // namespace hdls::sim
