#pragma once
/// \file report.hpp
/// Simulation results.

#include <cstdint>
#include <memory>
#include <ostream>
#include <vector>

#include "dls/technique.hpp"
#include "metrics/metrics.hpp"
#include "minimpi/topology.hpp"
#include "trace/trace.hpp"

namespace hdls::sim {

/// Per-worker virtual-time accounting.
struct SimWorker {
    int node = 0;
    int worker_in_node = 0;
    double busy = 0.0;       ///< loop-body compute time
    double overhead = 0.0;   ///< scheduling: locks, RMA, dequeues, bookkeeping
    double lock_wait = 0.0;  ///< part of overhead: waiting for the local lock/counter
    double idle = 0.0;       ///< barrier waits / waiting for work to appear
    double finish = 0.0;     ///< virtual time the worker left the loop
    std::int64_t iterations = 0;
    std::int64_t sub_chunks = 0;
    std::int64_t global_refills = 0;
};

/// Result of one simulated execution.
struct SimReport {
    int nodes = 0;
    int workers_per_node = 0;
    /// The machine tree the run scheduled over (outermost level first;
    /// always set — the classic run carries the implied {nodes, cores}).
    std::vector<minimpi::TopologyLevel> topology;
    std::int64_t total_iterations = 0;
    double parallel_time = 0.0;  ///< the paper's metric: max worker finish time
    /// Iterations re-queued from a killed node's local queue onto the
    /// survivors (SimConfig::failure); 0 when no failure was injected or
    /// the model had nothing to reclaim.
    std::int64_t reclaimed_iterations = 0;
    std::vector<SimWorker> workers;
    /// Virtual-time chunk-lifecycle events; null unless SimConfig::trace.
    std::shared_ptr<const trace::Trace> trace;
    /// Runtime-metrics delta for this simulation (the simulator mirrors its
    /// virtual-time accounting into the process-wide registry so sim and
    /// real runs export through the same Prometheus/JSON pipeline).
    metrics::Snapshot metrics;

    [[nodiscard]] std::int64_t executed_iterations() const noexcept;
    [[nodiscard]] std::int64_t global_chunks() const noexcept;
    [[nodiscard]] std::int64_t sub_chunks() const noexcept;
    [[nodiscard]] double total_busy() const noexcept;
    [[nodiscard]] double total_overhead() const noexcept;
    [[nodiscard]] double total_lock_wait() const noexcept;
    [[nodiscard]] double total_idle() const noexcept;
    /// busy / (parallel_time * workers): 1.0 = perfect scaling.
    [[nodiscard]] double efficiency() const noexcept;
    /// CoV of worker finish times (load-imbalance metric).
    [[nodiscard]] double finish_cov() const noexcept;

    void print(std::ostream& os) const;
};

}  // namespace hdls::sim
