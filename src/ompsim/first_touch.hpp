#pragma once
/// \file first_touch.hpp
/// First-touch initialization of kernel buffers by the team that will
/// compute into them.
///
/// On Linux, pages are physically allocated on the NUMA node of the thread
/// that first writes them. A buffer memset by the main thread therefore
/// lands entirely on one socket, and a scattered team then pulls half its
/// working set across the interconnect. Initializing each thread's static
/// share from inside the (pinned) team puts the pages where the compute is.

#include <algorithm>
#include <cstdint>

#include "ompsim/schedule.hpp"
#include "ompsim/team.hpp"

namespace hdls::ompsim {

/// Runs init(begin, end, thread_id) over [0, n) with the default static
/// (one contiguous block per thread) partition — the same partition a
/// subsequent static loop over the buffer would use.
template <typename Init>
void first_touch_ranges(ThreadTeam& team, std::int64_t n, Init&& init) {
    team.parallel_for(0, n, ForOptions{},
                      [&init](std::int64_t b, std::int64_t e, int tid) { init(b, e, tid); });
}

/// First-touch fill of data[0..n) with `value`.
template <typename T>
void first_touch_fill(ThreadTeam& team, T* data, std::int64_t n, T value) {
    first_touch_ranges(team, n, [data, value](std::int64_t b, std::int64_t e, int /*tid*/) {
        std::fill(data + b, data + e, value);
    });
}

}  // namespace hdls::ompsim
