/// \file team.cpp
/// ThreadTeam implementation: region dispatch, centralized barrier and the
/// worksharing schedules.

#include "ompsim/team.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "dls/chunk_formulas.hpp"
#include "metrics/metrics.hpp"

namespace hdls::ompsim {

thread_local int ThreadTeam::current_thread_id_ = -1;

ThreadTeam::ThreadTeam(int num_threads) : ThreadTeam(num_threads, Placement{}) {}

ThreadTeam::ThreadTeam(int num_threads, const Placement& placement) {
    if (num_threads < 1) {
        throw std::invalid_argument("ThreadTeam: need at least one thread");
    }
    pin_policy_ = placement.policy;
    if (pin_policy_ == minimpi::PinPolicy::None) {
        pin_cpus_.assign(static_cast<std::size_t>(num_threads), -1);
    } else {
        const minimpi::HostTopology host = placement.host.sockets().empty()
                                               ? minimpi::HostTopology::detect()
                                               : placement.host;
        pin_cpus_ = host.plan(pin_policy_, placement.first_worker, num_threads);
        // The caller is thread 0: save its affinity (restored on destroy,
        // so a pinned team does not leak placement into its creator) and
        // pin it like any other member.
        caller_affinity_ = minimpi::current_thread_affinity();
        minimpi::pin_current_thread(pin_cpus_[0]);
    }
    workshares_.reserve(kWorkshareSlots);
    for (std::size_t i = 0; i < kWorkshareSlots; ++i) {
        workshares_.push_back(std::make_unique<Workshare>());
    }
    ws_counts_.assign(static_cast<std::size_t>(num_threads), 0);
    workers_.reserve(static_cast<std::size_t>(num_threads - 1));
    for (int t = 1; t < num_threads; ++t) {
        workers_.emplace_back(
            [this, t](const std::stop_token& stop) { worker_main(t, stop); });
    }
}

ThreadTeam::~ThreadTeam() {
    {
        const std::lock_guard<std::mutex> lock(region_mutex_);
        for (auto& w : workers_) {
            w.request_stop();
        }
    }
    region_cv_.notify_all();
    // Join explicitly: `workers_` is declared before the condition
    // variables, so relying on std::jthread's auto-join would destroy the
    // cvs first and a worker still inside notify_all would touch a dead
    // object (caught by TSan).
    for (auto& w : workers_) {
        if (w.joinable()) {
            w.join();
        }
    }
    minimpi::set_current_thread_affinity(caller_affinity_);
}

void ThreadTeam::worker_main(int thread_id, const std::stop_token& stop) {
    minimpi::pin_current_thread(pin_cpus_[static_cast<std::size_t>(thread_id)]);
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(int)>* body = nullptr;
        {
            std::unique_lock<std::mutex> lock(region_mutex_);
            region_cv_.wait(lock, [&] {
                return stop.stop_requested() || region_generation_ > seen;
            });
            if (stop.stop_requested()) {
                return;
            }
            seen = region_generation_;
            body = region_body_;
        }
        current_thread_id_ = thread_id;
        (*body)(thread_id);
        current_thread_id_ = -1;
        {
            const std::lock_guard<std::mutex> lock(region_mutex_);
            region_done_.fetch_add(1, std::memory_order_acq_rel);
        }
        region_done_cv_.notify_all();
    }
}

void ThreadTeam::parallel(const std::function<void(int)>& body) {
    if (current_thread_id_ != -1 || in_region_) {
        throw std::logic_error("ThreadTeam: nested parallel regions are not supported");
    }
    {
        const std::lock_guard<std::mutex> lock(region_mutex_);
        in_region_ = true;
        region_body_ = &body;
        region_done_.store(0, std::memory_order_release);
        ++region_generation_;
    }
    region_cv_.notify_all();
    // The calling thread participates as thread 0 (the OpenMP master).
    current_thread_id_ = 0;
    body(0);
    current_thread_id_ = -1;
    {
        std::unique_lock<std::mutex> lock(region_mutex_);
        region_done_cv_.wait(lock, [&] {
            return region_done_.load(std::memory_order_acquire) ==
                   static_cast<int>(workers_.size());
        });
        region_body_ = nullptr;
        in_region_ = false;
    }
}

void ThreadTeam::barrier() {
    if (current_thread_id_ == -1) {
        throw std::logic_error("ThreadTeam: barrier() outside a parallel region");
    }
    const auto idle_t0 = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lock(barrier_mutex_);
    const std::uint64_t my_epoch = barrier_epoch_;
    if (++barrier_arrived_ == size()) {
        barrier_arrived_ = 0;
        ++barrier_epoch_;
        lock.unlock();
        barrier_cv_.notify_all();
        return;  // the releasing arrival waited for nobody
    }
    barrier_cv_.wait(lock, [&] { return barrier_epoch_ != my_epoch; });
    metrics::rt().team_idle_ns->inc(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - idle_t0)
            .count()));
}

ThreadTeam::Workshare& ThreadTeam::acquire_workshare(std::int64_t begin, std::int64_t end,
                                                     const ForOptions& opts) {
    const auto tid = static_cast<std::size_t>(current_thread_id_);
    const std::uint64_t my_gen = ++ws_counts_[tid];
    Workshare& ws = *workshares_[my_gen % kWorkshareSlots];
    const std::lock_guard<std::mutex> lock(ws.init_mutex);
    if (ws.generation == my_gen) {
        return ws;  // a teammate initialized it already
    }
    if (ws.generation > my_gen) {
        throw std::logic_error("ThreadTeam: worksharing slot collision (team out of sync)");
    }
    if (ws.generation != 0 && ws.done_threads.load(std::memory_order_acquire) < size()) {
        throw std::logic_error(
            "ThreadTeam: too many nowait worksharing constructs in flight (slot still in use)");
    }
    ws.generation = my_gen;
    ws.begin = begin;
    ws.end = end;
    ws.schedule = opts.schedule;
    ws.chunk = std::max<std::int64_t>(opts.chunk, opts.schedule == Schedule::Static ? 0 : 1);
    ws.next.store(begin, std::memory_order_release);
    ws.step.store(0, std::memory_order_release);
    ws.scheduled.store(0, std::memory_order_release);
    ws.done_threads.store(0, std::memory_order_release);
    return ws;
}

void ThreadTeam::dispatch(Workshare& ws, const ForOptions& opts, const ChunkBody& body,
                          int thread_id) {
    const std::int64_t n = ws.end - ws.begin;
    const auto team = static_cast<std::int64_t>(size());
    switch (ws.schedule) {
        case Schedule::Static: {
            if (ws.chunk > 0) {
                // schedule(static, k): round-robin k-chunks by thread id.
                for (std::int64_t s = ws.begin + thread_id * ws.chunk; s < ws.end;
                     s += team * ws.chunk) {
                    body(s, std::min(s + ws.chunk, ws.end), thread_id);
                }
            } else {
                // schedule(static): one contiguous block per thread.
                const std::int64_t base = n / team;
                const std::int64_t extra = n % team;
                const std::int64_t mine_begin =
                    ws.begin + thread_id * base + std::min<std::int64_t>(thread_id, extra);
                const std::int64_t mine_len = base + (thread_id < extra ? 1 : 0);
                if (mine_len > 0) {
                    body(mine_begin, mine_begin + mine_len, thread_id);
                }
            }
            break;
        }
        case Schedule::StaticChunk: {
            const std::int64_t k = std::max<std::int64_t>(ws.chunk, 1);
            for (std::int64_t s = ws.begin + thread_id * k; s < ws.end; s += team * k) {
                body(s, std::min(s + k, ws.end), thread_id);
            }
            break;
        }
        case Schedule::Dynamic: {
            const std::int64_t k = std::max<std::int64_t>(ws.chunk, 1);
            for (;;) {
                const std::int64_t cur = ws.next.fetch_add(k, std::memory_order_acq_rel);
                if (cur >= ws.end) {
                    break;
                }
                body(cur, std::min(cur + k, ws.end), thread_id);
            }
            break;
        }
        case Schedule::Guided: {
            // chunk = max(ceil(remaining / P), k) — the GSS rule, matching
            // the paper's Table 1 equivalence guided(1) == GSS.
            const std::int64_t k = std::max<std::int64_t>(ws.chunk, 1);
            for (;;) {
                std::int64_t cur = ws.next.load(std::memory_order_acquire);
                for (;;) {
                    const std::int64_t remaining = ws.end - cur;
                    if (remaining <= 0) {
                        cur = ws.end;
                        break;
                    }
                    std::int64_t size_c = std::max((remaining + team - 1) / team, k);
                    size_c = std::min(size_c, remaining);
                    if (ws.next.compare_exchange_weak(cur, cur + size_c,
                                                      std::memory_order_acq_rel)) {
                        body(cur, cur + size_c, thread_id);
                        cur = ws.next.load(std::memory_order_acquire);
                    }
                    // on CAS failure `cur` was reloaded; retry with new value
                }
                if (cur >= ws.end) {
                    break;
                }
            }
            break;
        }
        case Schedule::Tss:
        case Schedule::Fac2: {
            // Extension schedules via the step-indexed DLS formulas — the
            // same distributed chunk-calculation protocol the MPI side uses.
            dls::LoopParams p;
            p.total_iterations = n;
            p.workers = static_cast<int>(team);
            p.min_chunk = std::max<std::int64_t>(ws.chunk, 1);
            const auto tech =
                ws.schedule == Schedule::Tss ? dls::Technique::TSS : dls::Technique::FAC2;
            for (;;) {
                const std::int64_t step = ws.step.fetch_add(1, std::memory_order_acq_rel);
                const std::int64_t hint = dls::chunk_size_for_step(tech, p, step);
                const std::int64_t start =
                    ws.scheduled.fetch_add(hint, std::memory_order_acq_rel);
                if (start >= n) {
                    break;
                }
                const std::int64_t len = std::min(hint, n - start);
                body(ws.begin + start, ws.begin + start + len, thread_id);
            }
            break;
        }
    }
    ws.done_threads.fetch_add(1, std::memory_order_acq_rel);
    if (!opts.nowait) {
        barrier();
    }
}

void ThreadTeam::for_chunks(std::int64_t begin, std::int64_t end, const ForOptions& opts,
                            const ChunkBody& body) {
    if (current_thread_id_ == -1) {
        throw std::logic_error("ThreadTeam: for_chunks() outside a parallel region");
    }
    if (end < begin) {
        throw std::invalid_argument("ThreadTeam: end must be >= begin");
    }
    Workshare& ws = acquire_workshare(begin, end, opts);
    // Count every dispatched sub-chunk; the two-pointer capture stays in
    // std::function's small-buffer storage, so no allocation per call.
    metrics::Counter* const team_chunks = metrics::rt().team_chunks;
    const ChunkBody counted = [team_chunks, &body](std::int64_t b, std::int64_t e,
                                                   int thread_id) {
        team_chunks->inc();
        body(b, e, thread_id);
    };
    dispatch(ws, opts, counted, current_thread_id_);
}

void ThreadTeam::for_each(std::int64_t begin, std::int64_t end, const ForOptions& opts,
                          const std::function<void(std::int64_t)>& body) {
    for_chunks(begin, end, opts, [&](std::int64_t b, std::int64_t e, int /*tid*/) {
        for (std::int64_t i = b; i < e; ++i) {
            body(i);
        }
    });
}

void ThreadTeam::parallel_for(std::int64_t begin, std::int64_t end, const ForOptions& opts,
                              const ChunkBody& body) {
    parallel([&](int /*tid*/) { for_chunks(begin, end, opts, body); });
}

int ThreadTeam::pinned_cpu(int thread_id) const noexcept {
    if (thread_id < 0 || thread_id >= size()) {
        return -1;
    }
    return pin_cpus_[static_cast<std::size_t>(thread_id)];
}

std::vector<double> ThreadTeam::measure_per_thread(
    const std::function<double(int)>& probe) {
    std::vector<double> out(static_cast<std::size_t>(size()), 0.0);
    // Distinct indices per thread: no synchronization needed beyond the
    // region's implicit join.
    parallel([&](int tid) { out[static_cast<std::size_t>(tid)] = probe(tid); });
    return out;
}

}  // namespace hdls::ompsim
