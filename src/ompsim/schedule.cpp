#include "ompsim/schedule.hpp"

#include <algorithm>
#include <cctype>
#include <string>

namespace hdls::ompsim {

std::string_view schedule_name(Schedule s) noexcept {
    switch (s) {
        case Schedule::Static:
            return "static";
        case Schedule::StaticChunk:
            return "static_chunk";
        case Schedule::Dynamic:
            return "dynamic";
        case Schedule::Guided:
            return "guided";
        case Schedule::Tss:
            return "tss";
        case Schedule::Fac2:
            return "fac2";
    }
    return "?";
}

std::optional<Schedule> schedule_from_string(std::string_view name) noexcept {
    std::string lower(name);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    for (const Schedule s : {Schedule::Static, Schedule::StaticChunk, Schedule::Dynamic,
                             Schedule::Guided, Schedule::Tss, Schedule::Fac2}) {
        if (lower == schedule_name(s)) {
            return s;
        }
    }
    return std::nullopt;
}

std::optional<ForOptions> openmp_equivalent(dls::Technique t) noexcept {
    switch (t) {
        case dls::Technique::Static:
            return ForOptions{Schedule::Static, 0, false};
        case dls::Technique::SS:
            return ForOptions{Schedule::Dynamic, 1, false};
        case dls::Technique::GSS:
            return ForOptions{Schedule::Guided, 1, false};
        default:
            return std::nullopt;  // not expressible with the standard clause
    }
}

std::optional<ForOptions> extended_equivalent(dls::Technique t) noexcept {
    if (auto std_opt = openmp_equivalent(t)) {
        return std_opt;
    }
    switch (t) {
        case dls::Technique::TSS:
            return ForOptions{Schedule::Tss, 0, false};
        case dls::Technique::FAC2:
            return ForOptions{Schedule::Fac2, 0, false};
        default:
            return std::nullopt;
    }
}

}  // namespace hdls::ompsim
