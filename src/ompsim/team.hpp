#pragma once
/// \file team.hpp
/// Fork-join thread team with OpenMP-style worksharing loops.
///
/// A ThreadTeam owns `size()` persistent worker threads. `parallel(body)`
/// corresponds to `#pragma omp parallel`: every thread runs body(thread_id)
/// and the call returns after an implicit join barrier. Inside the parallel
/// region, `for_chunks`/`for_each` correspond to `#pragma omp for
/// schedule(...) [nowait]` with the implicit end-of-loop barrier the paper's
/// Figure 2 identifies as the MPI+OpenMP bottleneck — unless `nowait` is
/// set, mirroring the future-work discussion in the paper's Section 6.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "minimpi/host_topology.hpp"
#include "ompsim/schedule.hpp"

namespace hdls::ompsim {

/// Persistent fork-join team (non-copyable; joins its threads on destruction).
class ThreadTeam {
public:
    /// Chunk-granular loop body: [begin, end) executed by `thread_id`.
    using ChunkBody = std::function<void(std::int64_t begin, std::int64_t end, int thread_id)>;

    /// Where this team's members land on the host (HDLS_PIN).
    struct Placement {
        minimpi::PinPolicy policy = minimpi::PinPolicy::None;
        /// Socket layout to plan over; empty (no sockets) means "detect at
        /// team construction". Tests inject HostTopology::uniform here.
        minimpi::HostTopology host;
        /// Global worker index of this team's thread 0, so co-located teams
        /// (one per rank under the threads transport) interleave over the
        /// host CPUs instead of stacking onto the same cores.
        int first_worker = 0;
    };

    explicit ThreadTeam(int num_threads);
    ThreadTeam(int num_threads, const Placement& placement);
    ~ThreadTeam();

    ThreadTeam(const ThreadTeam&) = delete;
    ThreadTeam& operator=(const ThreadTeam&) = delete;

    [[nodiscard]] int size() const noexcept { return static_cast<int>(workers_.size()) + 1; }

    /// Fork-join parallel region: body(thread_id) runs on every team member
    /// (the calling thread acts as thread 0, like the OpenMP master).
    /// Returns after all members finish. Not reentrant (no nested regions).
    void parallel(const std::function<void(int thread_id)>& body);

    /// Team-wide barrier; callable only inside parallel().
    void barrier();

    /// Worksharing loop over [begin, end) — callable only inside parallel();
    /// every team member must reach it (standard OpenMP rule). Implicit
    /// barrier at the end unless opts.nowait.
    void for_chunks(std::int64_t begin, std::int64_t end, const ForOptions& opts,
                    const ChunkBody& body);

    /// Per-iteration convenience wrapper over for_chunks.
    void for_each(std::int64_t begin, std::int64_t end, const ForOptions& opts,
                  const std::function<void(std::int64_t i)>& body);

    /// One-call convenience: parallel region containing a single
    /// worksharing loop (what `#pragma omp parallel for` expands to).
    void parallel_for(std::int64_t begin, std::int64_t end, const ForOptions& opts,
                      const ChunkBody& body);

    /// The CPU thread `thread_id` is pinned to, or -1 when unpinned.
    [[nodiscard]] int pinned_cpu(int thread_id) const noexcept;
    [[nodiscard]] minimpi::PinPolicy pin_policy() const noexcept { return pin_policy_; }

    /// Runs probe(thread_id) on every member (a full parallel region) and
    /// returns the per-thread results indexed by thread id. This is how
    /// per-worker kernel throughput is measured *on the CPUs the workers
    /// actually occupy* to seed the honest AWF/WF weights.
    [[nodiscard]] std::vector<double> measure_per_thread(
        const std::function<double(int thread_id)>& probe);

private:
    /// Shared state of one worksharing construct. Slots are recycled
    /// round-robin; the generation tag pairs threads with the right
    /// construct even when `nowait` lets them run ahead.
    struct Workshare {
        std::mutex init_mutex;
        std::uint64_t generation = 0;  // construct number + 1; 0 = free
        std::int64_t begin = 0;
        std::int64_t end = 0;
        std::int64_t chunk = 1;
        Schedule schedule = Schedule::Static;
        std::atomic<std::int64_t> next{0};       // dynamic/guided cursor
        std::atomic<std::int64_t> step{0};       // tss/fac2 scheduling step
        std::atomic<std::int64_t> scheduled{0};  // tss/fac2 scheduled count
        std::atomic<int> done_threads{0};        // for slot-exhaustion check
    };

    static constexpr std::size_t kWorkshareSlots = 64;

    void worker_main(int thread_id, const std::stop_token& stop);
    void run_region_as(int thread_id);
    Workshare& acquire_workshare(std::int64_t begin, std::int64_t end, const ForOptions& opts);
    void dispatch(Workshare& ws, const ForOptions& opts, const ChunkBody& body, int thread_id);

    // thread-id of the calling thread within the current region (TLS).
    static thread_local int current_thread_id_;

    // Placement plan: per-thread CPU (or -1), set before workers start.
    minimpi::PinPolicy pin_policy_ = minimpi::PinPolicy::None;
    std::vector<int> pin_cpus_;
    // Thread 0 is the caller, whose affinity we change; restored on destroy.
    std::vector<int> caller_affinity_;

    std::vector<std::jthread> workers_;

    // Region dispatch.
    std::mutex region_mutex_;
    std::condition_variable region_cv_;
    std::uint64_t region_generation_ = 0;
    const std::function<void(int)>* region_body_ = nullptr;
    std::atomic<int> region_done_{0};
    std::condition_variable region_done_cv_;
    bool in_region_ = false;

    // Centralized sense-reversing barrier.
    std::mutex barrier_mutex_;
    std::condition_variable barrier_cv_;
    int barrier_arrived_ = 0;
    std::uint64_t barrier_epoch_ = 0;

    // Worksharing constructs.
    std::vector<std::unique_ptr<Workshare>> workshares_;
    /// Per-thread count of worksharing constructs encountered in the
    /// current region (all threads see the same sequence by the OpenMP
    /// "every thread must encounter the same constructs" rule).
    std::vector<std::uint64_t> ws_counts_;
};

}  // namespace hdls::ompsim
