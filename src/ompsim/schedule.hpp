#pragma once
/// \file schedule.hpp
/// Loop schedules of the OpenMP-like shim.
///
/// The shim ("ompsim") stands in for the OpenMP runtime in the paper's
/// MPI+OpenMP baseline. It implements the three schedule kinds of the
/// OpenMP 5 `schedule` clause with the semantics the paper's Table 1 maps
/// onto DLS techniques:
///
///     STATIC -> schedule(static)        Static / StaticChunk
///     SS     -> schedule(dynamic,1)     Dynamic with chunk 1
///     GSS    -> schedule(guided,1)      Guided with chunk 1
///
/// plus, as the extension the paper cites from LaPeSD-libGOMP (Ciorba,
/// Iwainsky & Buder, iWomp'18) and plans as future work, the TSS and FAC2
/// schedules, and a `nowait` mode that skips the implicit end-of-loop
/// barrier.

#include <cstdint>
#include <optional>
#include <string_view>

#include "dls/technique.hpp"

namespace hdls::ompsim {

/// Schedule kinds for ThreadTeam::for_each / for_chunks.
enum class Schedule {
    Static,       ///< schedule(static): one contiguous block per thread
    StaticChunk,  ///< schedule(static, k): round-robin k-sized chunks
    Dynamic,      ///< schedule(dynamic, k): shared-counter self-scheduling
    Guided,       ///< schedule(guided, k): chunk = max(ceil(remaining/P), k)
    Tss,          ///< extension: trapezoid self-scheduling (LaPeSD-libGOMP)
    Fac2,         ///< extension: practical factoring (LaPeSD-libGOMP)
};

/// Options of one worksharing construct (the `schedule(...)` [nowait] part).
struct ForOptions {
    Schedule schedule = Schedule::Static;
    /// Chunk size parameter of the clause; 0 = kind-specific default
    /// (static: block partition; dynamic/guided: 1).
    std::int64_t chunk = 0;
    /// Skip the implicit barrier at the end of the construct.
    bool nowait = false;
};

[[nodiscard]] std::string_view schedule_name(Schedule s) noexcept;
[[nodiscard]] std::optional<Schedule> schedule_from_string(std::string_view name) noexcept;

/// Table 1 of the paper: the OpenMP schedule equivalent to a DLS technique,
/// or std::nullopt for techniques the (Intel) OpenMP runtime cannot express
/// (TSS, FAC2, ... — expressible here only through the extension kinds).
[[nodiscard]] std::optional<ForOptions> openmp_equivalent(dls::Technique t) noexcept;

/// The extended mapping including the LaPeSD-libGOMP-style schedules; used
/// by the nowait/extension ablations.
[[nodiscard]] std::optional<ForOptions> extended_equivalent(dls::Technique t) noexcept;

}  // namespace hdls::ompsim
