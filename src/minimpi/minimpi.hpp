#pragma once
/// \file minimpi.hpp
/// Umbrella header for the thread-backed MPI-3-like runtime.
///
/// Quick tour:
///   minimpi::Runtime::run(32, {.ranks_per_node = 16}, [](minimpi::Context& ctx) {
///       auto world = ctx.world();                       // MPI_COMM_WORLD
///       auto node  = world.split_type(minimpi::SplitType::Shared, world.rank());
///       auto win   = minimpi::Window::allocate_shared(node, 2 * sizeof(std::int64_t));
///       auto step  = win.fetch_and_op<std::int64_t>(1, 0, 0, minimpi::AccumulateOp::Sum);
///       ...
///   });

#include "minimpi/backoff.hpp"   // IWYU pragma: export
#include "minimpi/comm.hpp"      // IWYU pragma: export
#include "minimpi/runtime.hpp"   // IWYU pragma: export
#include "minimpi/topology.hpp"  // IWYU pragma: export
#include "minimpi/transport.hpp" // IWYU pragma: export
#include "minimpi/types.hpp"     // IWYU pragma: export
#include "minimpi/window.hpp"    // IWYU pragma: export
