#pragma once
/// \file transport.hpp
/// Pluggable communication substrate of the minimpi runtime.
///
/// Runtime/Comm/Window are written against this seam; which machinery
/// actually carries the bytes is a launch-time choice (HDLS_TRANSPORT or
/// an explicit Runtime::run overload):
///
///  * TransportKind::Threads — the historical in-process substrate: heap
///    mailboxes guarded by mutex+condvar, window segments in an aligned
///    heap buffer, passive-target epochs on atomic lock words.
///  * TransportKind::Shm — the paper's MPI_Win_allocate_shared model: one
///    POSIX shared-memory segment (shm_open + mmap) holds every mailbox
///    and every window, synchronized exclusively through lock words and
///    atomics *inside* the segment. The layout is process-independent —
///    fixed-size slot tables, byte offsets instead of pointers — so the
///    data plane is exactly what a multi-process MPI+MPI run uses; rank
///    launch itself stays thread-based (results and traces are collected
///    in-process; see README "Transports").
///
/// Whatever the transport, the seam must carry the semantics the
/// scheduling core relies on:
///  * eager non-overtaking sends (Mailbox),
///  * passive-target epochs + element-wise atomics + request-based
///    nonblocking CAS (WindowStorage and the Window built on it),
///  * abort propagation: every blocking primitive observes a peer failure
///    in bounded time and throws ErrorCode::Aborted (mailbox waits poll
///    the runtime flag, window lock acquisition polls it between attempts,
///    and LockPolicy::Block waits are bounded try-lock slices).

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "minimpi/mailbox.hpp"
#include "minimpi/types.hpp"

namespace minimpi {

/// Which substrate carries a Runtime::run invocation.
enum class TransportKind {
    Threads,  ///< in-process heap mailboxes + mutex-backed windows (default)
    Shm,      ///< one POSIX shm segment: lock-word mailboxes + windows
};

[[nodiscard]] constexpr const char* transport_name(TransportKind kind) noexcept {
    switch (kind) {
        case TransportKind::Threads:
            return "threads";
        case TransportKind::Shm:
            return "shm";
    }
    return "?";
}

/// Reads HDLS_TRANSPORT ("threads" | "shm", case-insensitive). Returns
/// `fallback` when unset; throws a one-line std::invalid_argument on any
/// other value (a typo silently reverting to the thread substrate would
/// change what a run exercises).
[[nodiscard]] TransportKind transport_from_env(TransportKind fallback = TransportKind::Threads);

namespace detail {

/// Backing store + passive-target lock table of one window, owned by the
/// transport. `base()` is 64-byte aligned; segment offsets are computed by
/// the caller (Window::allocate_shared pads every segment to 64 bytes, so
/// each rank's segment starts on its own cache line — the property the
/// sharded queue's padded cells rely on).
class WindowStorage {
public:
    virtual ~WindowStorage() = default;

    [[nodiscard]] virtual std::byte* base() noexcept = 0;

    /// One non-blocking epoch-acquisition attempt on `rank`'s lock.
    [[nodiscard]] virtual bool try_lock(int rank, LockType type) noexcept = 0;

    /// One *bounded* blocking attempt (LockPolicy::Block): may park the
    /// caller in the OS, but must return within roughly `timeout` either
    /// way, so the acquire loop can poll abort between slices.
    [[nodiscard]] virtual bool try_lock_bounded(int rank, LockType type,
                                                std::chrono::milliseconds timeout) noexcept = 0;

    virtual void unlock(int rank, LockType type) noexcept = 0;
};

/// One Transport instance backs one Runtime::run invocation; all rank
/// threads share it. Implementations live in transport_threads.* and
/// transport_shm.*.
class Transport {
public:
    virtual ~Transport() = default;

    [[nodiscard]] virtual TransportKind kind() const noexcept = 0;

    /// The destination queue of a world rank.
    [[nodiscard]] virtual Mailbox& mailbox(int world_rank) noexcept = 0;

    /// Backing store + lock table for one window spanning `total_bytes`
    /// (the sum of all 64-byte-padded segments). Called once per window by
    /// the allocating rank; every rank's handle shares the result.
    [[nodiscard]] virtual std::unique_ptr<WindowStorage> allocate_window(
        std::size_t total_bytes, int ranks) = 0;

    /// Propagates a rank failure into the substrate: wakes blocked
    /// receivers and raises the transport-level abort word (the shm
    /// transport keeps one in the segment's control block, where a peer
    /// *process* mapping the segment would observe it too). The runtime
    /// flag itself (RuntimeState::abort) is set by the caller first.
    virtual void signal_abort() noexcept = 0;

    // ------------------------------------------------------- liveness ----
    // Per-rank liveness words backing lease-based fault tolerance
    // (docs/fault-tolerance.md): a monotonic heartbeat counter each rank
    // bumps at chunk boundaries, and a sticky dead set the failure
    // detector raises once a counter stops moving. On the shm transport
    // both live inside the segment (one cache line per rank, next to the
    // control block), where a peer *process* mapping the segment would
    // observe them too; the thread transport keeps padded heap atomics.

    /// Bumps `world_rank`'s heartbeat counter (relaxed fetch_add).
    virtual void beat(int world_rank) noexcept = 0;

    /// Reads `world_rank`'s heartbeat counter.
    [[nodiscard]] virtual std::uint64_t heartbeat(int world_rank) noexcept = 0;

    /// Declares `world_rank` dead. Sticky: a rank once marked stays dead
    /// for the remainder of the run (there is no resurrection protocol —
    /// a late completion by a falsely-suspected rank is fenced off at the
    /// lease layer instead).
    virtual void mark_dead(int world_rank) noexcept = 0;

    [[nodiscard]] virtual bool is_dead(int world_rank) noexcept = 0;
};

[[nodiscard]] std::unique_ptr<Transport> make_transport(TransportKind kind, int world_size);

}  // namespace detail

}  // namespace minimpi
