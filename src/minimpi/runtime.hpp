#pragma once
/// \file runtime.hpp
/// Launching a "cluster": Runtime::run spawns one thread per rank and gives
/// each a Context. This replaces `mpirun -np N` for the thread-backed
/// substrate; Topology plays the role of the host file / rank mapping.

#include <functional>

#include "minimpi/comm.hpp"
#include "minimpi/topology.hpp"
#include "minimpi/transport.hpp"

namespace minimpi {

/// Per-rank execution context handed to the rank function.
class Context {
public:
    /// World communicator (all ranks).
    [[nodiscard]] const Comm& world() const noexcept { return world_; }

    [[nodiscard]] int rank() const noexcept { return world_.rank(); }
    [[nodiscard]] int size() const noexcept { return world_.size(); }

    [[nodiscard]] const Topology& topology() const noexcept { return state_->topology; }

    /// Simulated compute node hosting this rank.
    [[nodiscard]] int node() const noexcept { return state_->topology.node_of(rank()); }

    /// Number of simulated compute nodes in this run.
    [[nodiscard]] int nodes() const noexcept { return state_->topology.nodes_for(size()); }

    /// Which substrate carries this run (threads or shm).
    [[nodiscard]] TransportKind transport() const noexcept { return state_->transport->kind(); }

private:
    friend class Runtime;
    Context(detail::RuntimeState* state, Comm world) : state_(state), world_(std::move(world)) {}

    detail::RuntimeState* state_;
    Comm world_;
};

/// Entry point of the thread-backed MPI runtime.
class Runtime {
public:
    /// Runs `fn` on `world_size` rank threads under the given topology and
    /// joins them. If any rank throws, the runtime aborts the others
    /// (blocking calls fail with ErrorCode::Aborted) and rethrows the first
    /// *primary* exception in the caller's thread.
    ///
    /// The communication substrate is chosen by HDLS_TRANSPORT (default:
    /// threads); a malformed value throws std::invalid_argument before any
    /// rank is launched.
    static void run(int world_size, const Topology& topology,
                    const std::function<void(Context&)>& fn);

    /// Single-node convenience overload (all ranks share one node).
    static void run(int world_size, const std::function<void(Context&)>& fn);

    /// Explicit-transport overloads: run on the given substrate regardless
    /// of the environment.
    static void run(int world_size, const Topology& topology, TransportKind transport,
                    const std::function<void(Context&)>& fn);
    static void run(int world_size, TransportKind transport,
                    const std::function<void(Context&)>& fn);
};

}  // namespace minimpi
