#pragma once
/// \file backoff.hpp
/// Lock-polling policy of the passive-target windows.
///
/// MPI_Win_lock on a contended target is a polling protocol: a blocked
/// origin re-sends lock-attempt messages until the target grants the
/// epoch (Zhao, Balaji & Gropp, ISPDC'16 — the cost the paper's intra-node
/// SS discussion revolves around). The thread-backed runtime mirrors that
/// with a try_lock polling loop, whose retry cadence is selectable:
///
///  * Spin    — naive polling: retry immediately after a yield, the
///              closest analogue of a fixed-period lock-attempt storm;
///  * Backoff — exponential pause/yield/sleep ladder (the default): a few
///              cache-polite pause spins for short holds, then scheduler
///              yields, then exponentially growing sleeps capped in the
///              hundreds of microseconds — contended handoffs stop
///              hammering the lock line and the waiters' attempt traffic
///              collapses (bench_ablation_lock_polling measures the
///              difference);
///  * Block   — hand the wait to the OS primitive entirely (no polling;
///              not what an MPI RMA agent can do, kept for comparison).
///
/// The policy is process-global and meant to be set once at startup (or
/// flipped between runs by benches); reads are a relaxed atomic load on
/// the uncontended fast path.

#include <atomic>
#include <chrono>
#include <thread>

#include "metrics/metrics.hpp"

namespace minimpi {

enum class LockPolicy {
    Spin,     ///< yield-and-retry every iteration
    Backoff,  ///< exponential pause/yield/sleep ladder (default)
    Block,    ///< blocking OS lock, no polling
};

/// Current window lock-acquisition policy (default LockPolicy::Backoff).
[[nodiscard]] LockPolicy lock_policy() noexcept;

/// Replaces the policy for subsequent Window::lock calls.
void set_lock_policy(LockPolicy policy) noexcept;

/// The exponential backoff ladder: call pause() after every failed
/// acquisition attempt. Stateful and cheap — a handful of on-core pause
/// instructions first, then scheduler yields, then exponentially growing
/// sleeps (1us doubling to a 256us cap), so waiters cost almost nothing
/// whether the hold is tens of nanoseconds or milliseconds.
class Backoff {
public:
    void pause() noexcept {
        if (attempts_ < kPauseAttempts) {
            ++attempts_;
            cpu_relax();
            return;
        }
        if (attempts_ < kPauseAttempts + kYieldAttempts) {
            ++attempts_;
            // Metrics only past the pause phase: a yield/sleep costs µs, so
            // the relaxed fetch_add is noise there; the pause spins stay
            // instrumentation-free.
            hdls::metrics::rt().window_backoff_yields->inc();
            std::this_thread::yield();
            return;
        }
        hdls::metrics::rt().window_backoff_sleeps->inc();
        std::this_thread::sleep_for(std::chrono::microseconds(sleep_us_));
        if (sleep_us_ < kMaxSleepUs) {
            sleep_us_ *= 2;
        }
    }

    void reset() noexcept {
        attempts_ = 0;
        sleep_us_ = 1;
    }

private:
    static void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#elif defined(__aarch64__)
        asm volatile("yield" ::: "memory");
#else
        std::this_thread::yield();
#endif
    }

    static constexpr int kPauseAttempts = 64;
    static constexpr int kYieldAttempts = 32;
    static constexpr int kMaxSleepUs = 256;

    int attempts_ = 0;
    int sleep_us_ = 1;
};

}  // namespace minimpi
