#pragma once
/// \file transport_shm.hpp
/// Internal: the POSIX shared-memory transport — the paper's
/// MPI_Win_allocate_shared model made literal. One shm_open + mmap segment
/// per Runtime::run holds *everything* the ranks exchange:
///
///   [ control block | mailbox 0 | mailbox 1 | ... | window arena ]
///
///  * Mailboxes are fixed-capacity slot tables (kShmMailboxSlots slots of
///    kShmMaxPayload inline payload bytes; bigger messages chain
///    continuation slots) ordered by an index-linked list, guarded by one
///    exclusive lock word per mailbox. push blocks under backpressure
///    (bounded eager buffering); match is a polled scan on the Backoff
///    ladder. Both observe the abort flag in bounded time.
///  * Windows are carved from the arena by an atomic bump allocator in the
///    control block: per-rank lock *words* (one cache line each — the
///    futex-or-polled words real passive-target implementations use over
///    network RMA) followed by the 64-byte-aligned segments. The arena is
///    not reclaimed on Window::free — each run maps a fresh segment, so a
///    run would need to allocate kShmWindowArenaBytes of *live* windows to
///    hit ErrorCode::Resource.
///
/// The layout is process-independent: byte offsets and lock words only, no
/// heap pointers, std::atomic / std::atomic_ref on lock-free cells. Rank
/// launch is still thread-based (see transport.hpp); the segment is
/// shm_unlink'ed right after mmap so an aborted process leaks nothing.
///
/// Not part of the public API.

#include "minimpi/transport.hpp"

namespace minimpi::detail {

/// Per-mailbox slot count; a sender whose destination has all slots in
/// flight blocks (polling abort) until the receiver drains one.
inline constexpr std::size_t kShmMailboxSlots = 256;
/// Inline payload bytes of one slot. Everything the scheduling core sends
/// is tens of bytes (one slot); a larger message chains continuation
/// slots, up to the whole slot table (kShmMailboxSlots * kShmMaxPayload
/// bytes) before throwing ErrorCode::Resource with a one-line hint.
inline constexpr std::size_t kShmMaxPayload = 4096;
/// Window arena capacity (virtual; tmpfs commits only touched pages).
inline constexpr std::size_t kShmWindowArenaBytes = std::size_t{64} << 20;

struct ShmControl;
struct ShmMailboxShared;

/// Owner of the mmap'ed segment (creation side: shm_open + ftruncate +
/// mmap + immediate shm_unlink).
class ShmSegment {
public:
    explicit ShmSegment(std::size_t bytes);
    ~ShmSegment();
    ShmSegment(const ShmSegment&) = delete;
    ShmSegment& operator=(const ShmSegment&) = delete;

    [[nodiscard]] std::byte* data() noexcept { return data_; }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }

private:
    std::byte* data_ = nullptr;
    std::size_t size_ = 0;
};

/// Handle over one rank's slot table inside the segment.
class ShmMailbox final : public Mailbox {
public:
    explicit ShmMailbox(ShmMailboxShared* shared) : sh_(shared) {}

    void push(Envelope e, const std::atomic<bool>& abort) override;
    Envelope match(const MatchSpec& spec, const std::atomic<bool>& abort) override;
    std::optional<Envelope> try_match(const MatchSpec& spec) override;
    std::optional<Status> peek(const MatchSpec& spec) override;
    void interrupt() override;  // waits are polled: nothing to wake
    [[nodiscard]] std::size_t pending() override;

private:
    ShmMailboxShared* sh_;
};

/// Lock words + segments inside the window arena. Holds a share of the
/// segment mapping: a Window handle (and thus its storage) may outlive
/// the Transport — e.g. survive Runtime::run unwinding — and must still
/// be able to release epochs without touching unmapped memory.
class ShmWindowStorage final : public WindowStorage {
public:
    /// `offset` points at `ranks` 64-byte lock-word lines followed by the
    /// data segments, inside `segment`.
    ShmWindowStorage(std::shared_ptr<ShmSegment> segment, std::size_t offset, int ranks);

    [[nodiscard]] std::byte* base() noexcept override { return data_; }
    [[nodiscard]] bool try_lock(int rank, LockType type) noexcept override;
    [[nodiscard]] bool try_lock_bounded(int rank, LockType type,
                                        std::chrono::milliseconds timeout) noexcept override;
    void unlock(int rank, LockType type) noexcept override;

private:
    std::shared_ptr<ShmSegment> segment_;
    std::byte* words_;
    std::byte* data_;
};

class ShmTransport final : public Transport {
public:
    explicit ShmTransport(int world_size);

    [[nodiscard]] TransportKind kind() const noexcept override { return TransportKind::Shm; }
    [[nodiscard]] Mailbox& mailbox(int world_rank) noexcept override {
        return *mailboxes_[static_cast<std::size_t>(world_rank)];
    }
    [[nodiscard]] std::unique_ptr<WindowStorage> allocate_window(std::size_t total_bytes,
                                                                 int ranks) override;
    void signal_abort() noexcept override;

    void beat(int world_rank) noexcept override;
    [[nodiscard]] std::uint64_t heartbeat(int world_rank) noexcept override;
    void mark_dead(int world_rank) noexcept override;
    [[nodiscard]] bool is_dead(int world_rank) noexcept override;

private:
    std::shared_ptr<ShmSegment> segment_;
    ShmControl* control_ = nullptr;
    /// Per-rank liveness lines inside the segment, right after the control
    /// block (a peer process mapping the segment observes heartbeats and
    /// the dead set exactly like the in-process ranks do).
    std::byte* live_ = nullptr;
    std::vector<std::unique_ptr<ShmMailbox>> mailboxes_;
};

}  // namespace minimpi::detail
