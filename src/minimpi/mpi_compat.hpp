#pragma once
/// \file mpi_compat.hpp
/// C-style MPI compatibility layer over minimpi.
///
/// The paper's stated motivation for MPI+MPI includes preserving "the
/// research efforts spent in developing DLS techniques using MPI". This
/// header makes that concrete for this repository: code written against
/// the classic MPI C API — MPI_Comm_rank, MPI_Send, MPI_Win_allocate_shared,
/// MPI_Fetch_and_op, ... — compiles and runs unchanged on the thread-backed
/// runtime, inside `minimpi::compat::run`:
///
///     minimpi::compat::run(32, minimpi::Topology{16}, [] {
///         using namespace minimpi::compat;
///         int rank = 0;
///         MPI_Comm_rank(MPI_COMM_WORLD, &rank);
///         MPI_Comm node_comm;
///         MPI_Comm_split_type(MPI_COMM_WORLD, MPI_COMM_TYPE_SHARED, rank,
///                             MPI_INFO_NULL, &node_comm);
///         ...
///     });
///
/// Everything lives in namespace minimpi::compat (no global-namespace
/// pollution); a `using namespace minimpi::compat;` makes user code look
/// exactly like MPI. Functions return MPI_SUCCESS / MPI_ERR_* codes like
/// the real API; the underlying minimpi exceptions are translated.
///
/// Scope: the subset the paper's approach and typical DLS codes need —
/// p2p (blocking + nonblocking), the common collectives, communicator
/// management including the shared-memory split, and RMA windows including
/// shared allocation, passive-target locks and atomics.

#include <cstddef>
#include <cstdint>
#include <functional>

#include "minimpi/topology.hpp"

namespace minimpi::compat {

// --------------------------------------------------------------- handles --

/// Opaque handles (rank-local, like real MPI handles).
using MPI_Comm = int;
using MPI_Win = int;
using MPI_Request = int;
using MPI_Info = int;
using MPI_Aint = std::ptrdiff_t;

inline constexpr MPI_Comm MPI_COMM_NULL = 0;
inline constexpr MPI_Comm MPI_COMM_WORLD = 1;
inline constexpr MPI_Win MPI_WIN_NULL = 0;
inline constexpr MPI_Request MPI_REQUEST_NULL = 0;
inline constexpr MPI_Info MPI_INFO_NULL = 0;

// ------------------------------------------------------------- constants --

inline constexpr int MPI_SUCCESS = 0;
inline constexpr int MPI_ERR_COMM = 5;
inline constexpr int MPI_ERR_TYPE = 3;
inline constexpr int MPI_ERR_ARG = 12;
inline constexpr int MPI_ERR_RANK = 6;
inline constexpr int MPI_ERR_TAG = 4;
inline constexpr int MPI_ERR_TRUNCATE = 15;
inline constexpr int MPI_ERR_OP = 9;
inline constexpr int MPI_ERR_WIN = 45;
inline constexpr int MPI_ERR_NO_MEM = 34;
inline constexpr int MPI_ERR_OTHER = 16;

inline constexpr int MPI_ANY_SOURCE = -1;
inline constexpr int MPI_ANY_TAG = -1;
inline constexpr int MPI_UNDEFINED = -32766;
inline constexpr int MPI_COMM_TYPE_SHARED = 1;
inline constexpr int MPI_LOCK_EXCLUSIVE = 234;
inline constexpr int MPI_LOCK_SHARED = 235;

/// Datatypes (the arithmetic subset).
enum MPI_Datatype : int {
    MPI_BYTE = 1,
    MPI_CHAR,
    MPI_INT,
    MPI_LONG,
    MPI_LONG_LONG,
    MPI_INT64_T,
    MPI_UINT64_T,
    MPI_FLOAT,
    MPI_DOUBLE,
};

/// Reduction / accumulate operations.
enum MPI_Op : int {
    MPI_SUM = 1,
    MPI_PROD,
    MPI_MIN,
    MPI_MAX,
    MPI_REPLACE,
    MPI_NO_OP,
};

/// Receive status (field names match MPI).
struct MPI_Status {
    int MPI_SOURCE = MPI_ANY_SOURCE;
    int MPI_TAG = MPI_ANY_TAG;
    int MPI_ERROR = MPI_SUCCESS;
    std::size_t internal_bytes = 0;  ///< implementation detail (count basis)
};

/// Pass where a status is not needed (like the real MPI_STATUS_IGNORE).
inline MPI_Status* const MPI_STATUS_IGNORE = nullptr;
inline MPI_Status* const MPI_STATUSES_IGNORE = nullptr;

// -------------------------------------------------------------- lifetime --

/// Runs `fn` on `world_size` rank threads with the compat layer active
/// (each rank thread gets its own handle tables and MPI_COMM_WORLD).
/// This replaces `mpirun` + MPI_Init/MPI_Finalize.
void run(int world_size, const Topology& topology, const std::function<void()>& fn);
void run(int world_size, const std::function<void()>& fn);

/// True between run() entry and exit on this thread (MPI_Initialized).
int MPI_Initialized(int* flag);

// ------------------------------------------------------------------- p2p --

int MPI_Comm_rank(MPI_Comm comm, int* rank);
int MPI_Comm_size(MPI_Comm comm, int* size);

int MPI_Send(const void* buf, int count, MPI_Datatype datatype, int dest, int tag,
             MPI_Comm comm);
int MPI_Recv(void* buf, int count, MPI_Datatype datatype, int source, int tag, MPI_Comm comm,
             MPI_Status* status);
int MPI_Isend(const void* buf, int count, MPI_Datatype datatype, int dest, int tag,
              MPI_Comm comm, MPI_Request* request);
int MPI_Irecv(void* buf, int count, MPI_Datatype datatype, int source, int tag, MPI_Comm comm,
              MPI_Request* request);
int MPI_Wait(MPI_Request* request, MPI_Status* status);
int MPI_Test(MPI_Request* request, int* flag, MPI_Status* status);
int MPI_Waitall(int count, MPI_Request* requests, MPI_Status* statuses);
int MPI_Probe(int source, int tag, MPI_Comm comm, MPI_Status* status);
int MPI_Iprobe(int source, int tag, MPI_Comm comm, int* flag, MPI_Status* status);
int MPI_Get_count(const MPI_Status* status, MPI_Datatype datatype, int* count);
int MPI_Sendrecv(const void* sendbuf, int sendcount, MPI_Datatype sendtype, int dest,
                 int sendtag, void* recvbuf, int recvcount, MPI_Datatype recvtype, int source,
                 int recvtag, MPI_Comm comm, MPI_Status* status);

// ----------------------------------------------------------- collectives --

int MPI_Barrier(MPI_Comm comm);
int MPI_Bcast(void* buffer, int count, MPI_Datatype datatype, int root, MPI_Comm comm);
int MPI_Reduce(const void* sendbuf, void* recvbuf, int count, MPI_Datatype datatype, MPI_Op op,
               int root, MPI_Comm comm);
int MPI_Allreduce(const void* sendbuf, void* recvbuf, int count, MPI_Datatype datatype,
                  MPI_Op op, MPI_Comm comm);
int MPI_Gather(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
               int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm);
int MPI_Allgather(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                  int recvcount, MPI_Datatype recvtype, MPI_Comm comm);
int MPI_Scatter(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm);

// -------------------------------------------------------- comm management --

int MPI_Comm_dup(MPI_Comm comm, MPI_Comm* newcomm);
int MPI_Comm_split(MPI_Comm comm, int color, int key, MPI_Comm* newcomm);
int MPI_Comm_split_type(MPI_Comm comm, int split_type, int key, MPI_Info info,
                        MPI_Comm* newcomm);
int MPI_Comm_free(MPI_Comm* comm);

// ------------------------------------------------------------------- RMA --

int MPI_Win_allocate_shared(MPI_Aint size, int disp_unit, MPI_Info info, MPI_Comm comm,
                            void* baseptr, MPI_Win* win);
int MPI_Win_shared_query(MPI_Win win, int rank, MPI_Aint* size, int* disp_unit, void* baseptr);
int MPI_Win_lock(int lock_type, int rank, int assert_arg, MPI_Win win);
int MPI_Win_unlock(int rank, MPI_Win win);
int MPI_Win_lock_all(int assert_arg, MPI_Win win);
int MPI_Win_unlock_all(MPI_Win win);
int MPI_Fetch_and_op(const void* origin_addr, void* result_addr, MPI_Datatype datatype,
                     int target_rank, MPI_Aint target_disp, MPI_Op op, MPI_Win win);
int MPI_Compare_and_swap(const void* origin_addr, const void* compare_addr, void* result_addr,
                         MPI_Datatype datatype, int target_rank, MPI_Aint target_disp,
                         MPI_Win win);
int MPI_Win_flush(int rank, MPI_Win win);
int MPI_Win_flush_all(MPI_Win win);
int MPI_Win_sync(MPI_Win win);
int MPI_Win_free(MPI_Win* win);

}  // namespace minimpi::compat
