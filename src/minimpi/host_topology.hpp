#pragma once
/// \file host_topology.hpp
/// One level below minimpi::Topology: the physical layout of the host the
/// process runs on — sockets (NUMA packages) and the logical CPUs of each.
///
/// minimpi::Topology describes the *machine tree* the scheduler partitions
/// work over (racks / nodes / cores); this file describes where the leaf
/// workers physically land, which matters twice:
///   1. thread placement — ompsim::ThreadTeam pins its members according to
///      a PinPolicy plan over this topology (HDLS_PIN), and
///   2. first-touch — buffers initialized by their computing thread get
///      their pages on that thread's socket.
///
/// Detection reads sysfs (physical_package_id per CPU); on non-Linux hosts
/// or restricted containers it degrades to a single socket spanning
/// hardware_concurrency, which turns every policy into plain core pinning.

#include <optional>
#include <string_view>
#include <vector>

namespace minimpi {

/// How a thread team lays its members over the host CPUs.
enum class PinPolicy {
    None,     ///< no affinity calls; the OS scheduler places threads
    Compact,  ///< fill a socket's CPUs before spilling to the next
    Scatter,  ///< round-robin consecutive workers across sockets
};

[[nodiscard]] std::string_view pin_policy_name(PinPolicy p) noexcept;
[[nodiscard]] std::optional<PinPolicy> pin_policy_from_string(std::string_view name) noexcept;

/// One physical package and its logical CPUs (sorted ascending).
struct HostSocket {
    int id = 0;
    std::vector<int> cpus;
};

/// The socket/CPU layout of this host.
class HostTopology {
public:
    /// Detects the layout from sysfs; falls back to a single socket of
    /// hardware_concurrency CPUs when sysfs is unavailable.
    [[nodiscard]] static HostTopology detect();

    /// Synthetic layout (tests): `sockets` packages of `cpus_per_socket`
    /// consecutively-numbered CPUs each.
    [[nodiscard]] static HostTopology uniform(int sockets, int cpus_per_socket);

    [[nodiscard]] const std::vector<HostSocket>& sockets() const noexcept { return sockets_; }
    [[nodiscard]] int total_cpus() const noexcept;

    /// The CPU assignment of `count` workers whose global worker indices
    /// start at `first_worker` (so co-located teams of one process, e.g.
    /// the per-rank teams of the threads transport, interleave instead of
    /// stacking onto the same cores). Entry i is the CPU of worker i, or
    /// -1 for PinPolicy::None. Workers beyond total_cpus() wrap around.
    [[nodiscard]] std::vector<int> plan(PinPolicy policy, int first_worker,
                                        int count) const;

private:
    std::vector<HostSocket> sockets_;
};

/// Pins the calling thread to `cpu`; returns false when unsupported or the
/// kernel refuses (cpuset-restricted containers). cpu < 0 is a no-op true.
bool pin_current_thread(int cpu) noexcept;

/// The calling thread's allowed-CPU list (empty when unsupported).
[[nodiscard]] std::vector<int> current_thread_affinity();

/// Restores an affinity list previously captured by
/// current_thread_affinity(); empty input is a no-op.
bool set_current_thread_affinity(const std::vector<int>& cpus) noexcept;

}  // namespace minimpi
