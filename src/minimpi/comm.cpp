/// \file comm.cpp
/// Point-to-point core, collective algorithms and communicator management.

#include "minimpi/comm.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

#include "util/rng.hpp"

namespace minimpi {

namespace {

/// Deterministic derivation of a child communicator id: every member mixes
/// the same (parent id, per-rank split sequence, color) triple, so the whole
/// group agrees on the id without any coordination messages.
[[nodiscard]] std::uint64_t derive_comm_id(std::uint64_t parent, std::uint64_t seq,
                                           std::uint64_t color) {
    using hdls::util::mix64;
    return mix64(parent ^ mix64(seq ^ 0x636f6d6dULL) ^ mix64(color + 0x1234567ULL));
}

struct SplitEntry {
    int color;
    int key;
    int old_rank;
};

}  // namespace

// ------------------------------------------------------------- validation --

void Comm::require_valid() const {
    if (!valid()) {
        throw Error(ErrorCode::InvalidArgument, "minimpi: operation on an invalid communicator");
    }
}

void Comm::check_dst(int dst) const {
    if (dst < 0 || dst >= size()) {
        throw Error(ErrorCode::InvalidRank,
                    "minimpi: destination rank " + std::to_string(dst) + " out of range [0, " +
                        std::to_string(size()) + ")");
    }
}

void Comm::check_src(int src) const {
    if (src != kAnySource && (src < 0 || src >= size())) {
        throw Error(ErrorCode::InvalidRank,
                    "minimpi: source rank " + std::to_string(src) + " out of range");
    }
}

void Comm::check_tag(int tag, bool allow_wildcard) const {
    if (tag == kAnyTag && allow_wildcard) {
        return;
    }
    if (tag < 0) {
        throw Error(ErrorCode::InvalidTag, "minimpi: tag must be >= 0");
    }
}

void Comm::check_same_extent(std::size_t a, std::size_t b) {
    if (a != b) {
        throw Error(ErrorCode::InvalidArgument, "minimpi: buffer extents differ");
    }
}

int Comm::world_rank_of(int comm_rank) const {
    require_valid();
    if (comm_rank < 0 || comm_rank >= size()) {
        throw Error(ErrorCode::InvalidRank, "minimpi: comm rank out of range");
    }
    return meta_->members[static_cast<std::size_t>(comm_rank)];
}

int Comm::node_of(int comm_rank) const {
    return state_->topology.node_of(world_rank_of(comm_rank));
}

// --------------------------------------------------------------- liveness --

void Comm::beat() const {
    require_valid();
    state_->transport->beat(world_rank_of(rank_));
}

std::uint64_t Comm::heartbeat_of(int comm_rank) const {
    require_valid();
    return state_->transport->heartbeat(world_rank_of(comm_rank));
}

void Comm::mark_dead(int comm_rank) const {
    require_valid();
    state_->transport->mark_dead(world_rank_of(comm_rank));
}

bool Comm::is_dead(int comm_rank) const {
    require_valid();
    return state_->transport->is_dead(world_rank_of(comm_rank));
}

int Comm::alive() const {
    require_valid();
    int live = 0;
    for (int r = 0; r < size(); ++r) {
        live += is_dead(r) ? 0 : 1;
    }
    return live;
}

// -------------------------------------------------------------------- p2p --

void Comm::send_bytes(const void* data, std::size_t bytes, int dst, int tag) const {
    require_valid();
    check_dst(dst);
    check_tag(tag, /*allow_wildcard=*/false);
    state_->check_abort();
    detail::Envelope e;
    e.comm_id = meta_->id;
    e.src = rank_;
    e.tag = tag;
    e.payload.resize(bytes);
    if (bytes > 0) {
        std::memcpy(e.payload.data(), data, bytes);
    }
    const int world_dst = meta_->members[static_cast<std::size_t>(dst)];
    state_->mailbox(world_dst).push(std::move(e), state_->abort);
}

Status Comm::recv_bytes(void* data, std::size_t max_bytes, int src, int tag) const {
    require_valid();
    check_src(src);
    check_tag(tag, /*allow_wildcard=*/true);
    detail::MatchSpec spec{meta_->id, src, tag, /*collective=*/false, 0};
    const int my_world = meta_->members[static_cast<std::size_t>(rank_)];
    detail::Envelope e = state_->mailbox(my_world).match(spec, state_->abort);
    if (e.payload.size() > max_bytes) {
        throw Error(ErrorCode::Truncate,
                    "minimpi: message of " + std::to_string(e.payload.size()) +
                        " bytes truncated by a " + std::to_string(max_bytes) + "-byte buffer");
    }
    if (!e.payload.empty()) {
        std::memcpy(data, e.payload.data(), e.payload.size());
    }
    return Status{e.src, e.tag, e.payload.size()};
}

Request Comm::irecv_bytes(void* data, std::size_t max_bytes, int src, int tag) const {
    require_valid();
    check_src(src);
    check_tag(tag, /*allow_wildcard=*/true);
    Request::RecvState rs;
    rs.state = state_;
    const int my_world = meta_->members[static_cast<std::size_t>(rank_)];
    rs.mailbox = &state_->mailbox(my_world);
    rs.spec = detail::MatchSpec{meta_->id, src, tag, /*collective=*/false, 0};
    rs.buffer = data;
    rs.max_bytes = max_bytes;
    return Request(rs);
}

std::optional<Status> Comm::iprobe(int src, int tag) const {
    require_valid();
    check_src(src);
    check_tag(tag, /*allow_wildcard=*/true);
    const detail::MatchSpec spec{meta_->id, src, tag, /*collective=*/false, 0};
    const int my_world = meta_->members[static_cast<std::size_t>(rank_)];
    return state_->mailbox(my_world).peek(spec);
}

Status Comm::probe(int src, int tag) const {
    for (;;) {
        if (auto s = iprobe(src, tag)) {
            return *s;
        }
        state_->check_abort();
        std::this_thread::yield();
    }
}

// ---------------------------------------------------------------- Request --

void Request::complete_with(detail::Envelope e) {
    if (e.payload.size() > recv_->max_bytes) {
        throw Error(ErrorCode::Truncate, "minimpi: irecv buffer too small for matched message");
    }
    if (!e.payload.empty()) {
        std::memcpy(recv_->buffer, e.payload.data(), e.payload.size());
    }
    status_ = Status{e.src, e.tag, e.payload.size()};
    done_ = true;
    recv_.reset();
}

void Request::wait() {
    if (done_ || !recv_) {
        done_ = true;
        return;
    }
    complete_with(recv_->mailbox->match(recv_->spec, recv_->state->abort));
}

bool Request::test() {
    if (done_ || !recv_) {
        done_ = true;
        return true;
    }
    if (auto e = recv_->mailbox->try_match(recv_->spec)) {
        complete_with(std::move(*e));
        return true;
    }
    return false;
}

void Request::wait_all(std::span<Request> requests) {
    for (Request& r : requests) {
        r.wait();
    }
}

// ----------------------------------------------------- collective plumbing --

void Comm::coll_send(const void* data, std::size_t bytes, int dst, int phase,
                     std::uint64_t cseq) const {
    state_->check_abort();
    detail::Envelope e;
    e.comm_id = meta_->id;
    e.src = rank_;
    e.tag = phase;
    e.collective = true;
    e.cseq = cseq;
    e.payload.resize(bytes);
    if (bytes > 0) {
        std::memcpy(e.payload.data(), data, bytes);
    }
    const int world_dst = meta_->members[static_cast<std::size_t>(dst)];
    state_->mailbox(world_dst).push(std::move(e), state_->abort);
}

std::size_t Comm::coll_recv(void* data, std::size_t max_bytes, int src, int phase,
                            std::uint64_t cseq) const {
    const detail::MatchSpec spec{meta_->id, src, phase, /*collective=*/true, cseq};
    const int my_world = meta_->members[static_cast<std::size_t>(rank_)];
    detail::Envelope e = state_->mailbox(my_world).match(spec, state_->abort);
    if (e.payload.size() > max_bytes) {
        throw Error(ErrorCode::Internal, "minimpi: collective buffer mismatch");
    }
    if (!e.payload.empty()) {
        std::memcpy(data, e.payload.data(), e.payload.size());
    }
    return e.payload.size();
}

// -------------------------------------------------------------- collectives --

void Comm::barrier() const {
    require_valid();
    const std::uint64_t cseq = ++counters_->collective_seq;
    const int p = size();
    if (p == 1) {
        return;
    }
    // Dissemination barrier: ceil(log2(P)) rounds; eager sends keep it
    // deadlock-free without pairing send/recv.
    const std::byte token{0};
    int phase = 0;
    for (int dist = 1; dist < p; dist <<= 1, ++phase) {
        const int dst = (rank_ + dist) % p;
        const int src = (rank_ - dist % p + p) % p;
        coll_send(&token, 1, dst, phase, cseq);
        std::byte sink{};
        (void)coll_recv(&sink, 1, src, phase, cseq);
    }
}

void Comm::bcast_bytes(void* data, std::size_t bytes, int root) const {
    require_valid();
    check_dst(root);
    const std::uint64_t cseq = ++counters_->collective_seq;
    const int p = size();
    if (p == 1) {
        return;
    }
    // Binomial tree over root-relative virtual ranks (MPICH-style).
    const int vrank = (rank_ - root + p) % p;
    auto real = [&](int v) { return (v + root) % p; };
    int mask = 1;
    while (mask < p) {
        if ((vrank & mask) != 0) {
            (void)coll_recv(data, bytes, real(vrank - mask), 0, cseq);
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
        if (vrank + mask < p && (vrank & (mask - 1)) == 0 && (vrank & mask) == 0) {
            coll_send(data, bytes, real(vrank + mask), 0, cseq);
        }
        mask >>= 1;
    }
}

void Comm::reduce_bytes(const void* in, void* out, std::size_t bytes, Combiner combine,
                        std::size_t elem_size, int root) const {
    require_valid();
    check_dst(root);
    const std::uint64_t cseq = ++counters_->collective_seq;
    const int p = size();
    const std::size_t count = elem_size > 0 ? bytes / elem_size : 0;
    // Accumulate into a scratch copy of the local contribution.
    std::vector<std::byte> acc(bytes);
    if (bytes > 0) {
        std::memcpy(acc.data(), in, bytes);
    }
    if (p > 1) {
        const int vrank = (rank_ - root + p) % p;
        auto real = [&](int v) { return (v + root) % p; };
        std::vector<std::byte> incoming(bytes);
        int mask = 1;
        while (mask < p) {
            if ((vrank & mask) == 0) {
                const int partner = vrank + mask;
                if (partner < p) {
                    (void)coll_recv(incoming.data(), bytes, real(partner), 0, cseq);
                    combine(acc.data(), incoming.data(), count);
                }
            } else {
                coll_send(acc.data(), bytes, real(vrank - mask), 0, cseq);
                break;
            }
            mask <<= 1;
        }
    }
    if (rank_ == root && bytes > 0) {
        std::memcpy(out, acc.data(), bytes);
    }
}

void Comm::gather_bytes(const void* in, std::size_t in_bytes, void* out, std::size_t out_bytes,
                        int root) const {
    require_valid();
    check_dst(root);
    const std::uint64_t cseq = ++counters_->collective_seq;
    const int p = size();
    if (rank_ == root) {
        if (out_bytes != in_bytes * static_cast<std::size_t>(p)) {
            throw Error(ErrorCode::InvalidArgument,
                        "minimpi: gather output must hold size()*input bytes");
        }
        auto* dst = static_cast<std::byte*>(out);
        for (int r = 0; r < p; ++r) {
            std::byte* slot = dst + static_cast<std::size_t>(r) * in_bytes;
            if (r == rank_) {
                if (in_bytes > 0) {
                    std::memcpy(slot, in, in_bytes);
                }
            } else {
                (void)coll_recv(slot, in_bytes, r, 0, cseq);
            }
        }
    } else {
        coll_send(in, in_bytes, root, 0, cseq);
    }
}

void Comm::scatter_bytes(const void* in, std::size_t in_bytes, void* out, std::size_t out_bytes,
                         int root) const {
    require_valid();
    check_dst(root);
    const std::uint64_t cseq = ++counters_->collective_seq;
    const int p = size();
    if (rank_ == root) {
        if (in_bytes != out_bytes * static_cast<std::size_t>(p)) {
            throw Error(ErrorCode::InvalidArgument,
                        "minimpi: scatter input must hold size()*output bytes");
        }
        const auto* src = static_cast<const std::byte*>(in);
        for (int r = 0; r < p; ++r) {
            const std::byte* slot = src + static_cast<std::size_t>(r) * out_bytes;
            if (r == rank_) {
                if (out_bytes > 0) {
                    std::memcpy(out, slot, out_bytes);
                }
            } else {
                coll_send(slot, out_bytes, r, 0, cseq);
            }
        }
    } else {
        (void)coll_recv(out, out_bytes, root, 0, cseq);
    }
}

// --------------------------------------------------------- comm management --

Comm Comm::dup() const {
    require_valid();
    const std::uint64_t seq = ++counters_->split_seq;
    auto meta = std::make_shared<detail::CommMeta>();
    meta->id = derive_comm_id(meta_->id, seq, 0xd0b0ULL);
    meta->members = meta_->members;
    return Comm(state_, std::move(meta), rank_);
}

Comm Comm::split(int color, int key) const {
    require_valid();
    const std::uint64_t seq = ++counters_->split_seq;
    // Exchange (color, key, old rank) among all members; every rank then
    // derives its group deterministically — no leader required.
    const SplitEntry mine{color, key, rank_};
    std::vector<SplitEntry> entries(static_cast<std::size_t>(size()));
    allgather(std::span<const SplitEntry>(&mine, 1), std::span<SplitEntry>(entries));
    if (color < 0) {
        return Comm();  // MPI_UNDEFINED -> MPI_COMM_NULL
    }
    std::vector<SplitEntry> group;
    for (const auto& e : entries) {
        if (e.color == color) {
            group.push_back(e);
        }
    }
    std::sort(group.begin(), group.end(), [](const SplitEntry& a, const SplitEntry& b) {
        return a.key != b.key ? a.key < b.key : a.old_rank < b.old_rank;
    });
    auto meta = std::make_shared<detail::CommMeta>();
    meta->id = derive_comm_id(meta_->id, seq, static_cast<std::uint64_t>(color));
    meta->members.reserve(group.size());
    int my_new_rank = -1;
    for (std::size_t i = 0; i < group.size(); ++i) {
        meta->members.push_back(meta_->members[static_cast<std::size_t>(group[i].old_rank)]);
        if (group[i].old_rank == rank_) {
            my_new_rank = static_cast<int>(i);
        }
    }
    return Comm(state_, std::move(meta), my_new_rank);
}

Comm Comm::split_type(SplitType type, int key) const {
    require_valid();
    switch (type) {
        case SplitType::Shared: {
            const int my_world = meta_->members[static_cast<std::size_t>(rank_)];
            return split(state_->topology.node_of(my_world), key);
        }
    }
    throw Error(ErrorCode::InvalidArgument, "minimpi: unknown SplitType");
}

}  // namespace minimpi
