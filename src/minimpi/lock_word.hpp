#pragma once
/// \file lock_word.hpp
/// Internal: the passive-target epoch lock word shared by both transports.
/// One 32-bit word per (window, target rank): bit 31 is the writer bit,
/// the low bits count shared holders.
///
/// Every transition is a CAS or fetch op, so an epoch can be *released
/// from any thread*. That is a requirement, not a convenience: epochs
/// belong to Window handles, and a handle's destructor may run far from
/// the thread that acquired (a handle stored outside the rank lambda, a
/// moved-to handle on another rank's stack) — which rules out OS rwlocks,
/// whose unlock is undefined from a non-owning thread. It also keeps the
/// word process-independent for the shm segment.
///
/// Not part of the public API.

#include <atomic>
#include <chrono>
#include <cstdint>

#include "minimpi/backoff.hpp"
#include "minimpi/types.hpp"

namespace minimpi::detail {

inline constexpr std::uint32_t kEpochWriterBit = 0x8000'0000U;

/// One acquisition attempt; never blocks.
[[nodiscard]] inline bool epoch_try_lock(std::atomic<std::uint32_t>& word,
                                         LockType type) noexcept {
    if (type == LockType::Exclusive) {
        std::uint32_t expected = 0;
        return word.compare_exchange_strong(expected, kEpochWriterBit,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire);
    }
    std::uint32_t v = word.load(std::memory_order_acquire);
    while ((v & kEpochWriterBit) == 0) {
        if (word.compare_exchange_weak(v, v + 1, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
            return true;
        }
    }
    return false;
}

/// A bounded "blocking" slice: no OS primitive backs the word, so block
/// means try on the Backoff ladder until the deadline.
[[nodiscard]] inline bool epoch_try_lock_bounded(std::atomic<std::uint32_t>& word, LockType type,
                                                 std::chrono::milliseconds timeout) noexcept {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    Backoff backoff;
    while (!epoch_try_lock(word, type)) {
        if (std::chrono::steady_clock::now() >= deadline) {
            return false;
        }
        backoff.pause();
    }
    return true;
}

inline void epoch_unlock(std::atomic<std::uint32_t>& word, LockType type) noexcept {
    if (type == LockType::Exclusive) {
        word.store(0, std::memory_order_release);
    } else {
        word.fetch_sub(1, std::memory_order_acq_rel);
    }
}

}  // namespace minimpi::detail
