/// \file transport.cpp
/// Transport selection: the HDLS_TRANSPORT knob and the factory.

#include "minimpi/transport.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "minimpi/transport_shm.hpp"
#include "minimpi/transport_threads.hpp"

namespace minimpi {

TransportKind transport_from_env(TransportKind fallback) {
    const char* raw = std::getenv("HDLS_TRANSPORT");
    if (raw == nullptr || *raw == '\0') {
        return fallback;
    }
    std::string value(raw);
    for (char& c : value) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (value == "threads") {
        return TransportKind::Threads;
    }
    if (value == "shm") {
        return TransportKind::Shm;
    }
    throw std::invalid_argument(std::string("HDLS_TRANSPORT='") + raw +
                                "' is not a transport (expected 'threads' or 'shm')");
}

namespace detail {

std::unique_ptr<Transport> make_transport(TransportKind kind, int world_size) {
    switch (kind) {
        case TransportKind::Threads:
            return std::make_unique<ThreadTransport>(world_size);
        case TransportKind::Shm:
            return std::make_unique<ShmTransport>(world_size);
    }
    throw Error(ErrorCode::InvalidArgument, "minimpi: unknown TransportKind");
}

}  // namespace detail

}  // namespace minimpi
