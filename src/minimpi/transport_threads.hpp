#pragma once
/// \file transport_threads.hpp
/// Internal: the in-process thread transport — the historical minimpi
/// substrate, extracted behind the Transport seam. Mailboxes are heap
/// deques under mutex+condvar; window segments live in an aligned heap
/// buffer with one epoch lock word per rank (see lock_word.hpp — epochs
/// may be released from any thread, so the lock table cannot be OS
/// rwlocks). Not part of the public API.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "minimpi/lock_word.hpp"
#include "minimpi/transport.hpp"

namespace minimpi::detail {

/// Mutex+condvar mailbox. push never blocks (unbounded heap buffering);
/// match parks on the condvar with a 50 ms abort-poll cadence.
class ThreadMailbox final : public Mailbox {
public:
    void push(Envelope e, const std::atomic<bool>& abort) override;
    Envelope match(const MatchSpec& spec, const std::atomic<bool>& abort) override;
    std::optional<Envelope> try_match(const MatchSpec& spec) override;
    std::optional<Status> peek(const MatchSpec& spec) override;
    void interrupt() override;
    [[nodiscard]] std::size_t pending() override;

private:
    std::optional<Envelope> take_locked(const MatchSpec& spec);

    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Envelope> queue_;
};

/// Heap-backed window storage. The buffer is over-allocated and the base
/// rounded up so base() is genuinely 64-byte aligned — segments padded to
/// 64 bytes by the layout are then 64-byte aligned *absolutely*, not just
/// relative to the base (the alignment lie the sharded queue's
/// cache-line-padded cells used to be exposed to).
class ThreadWindowStorage final : public WindowStorage {
public:
    ThreadWindowStorage(std::size_t total_bytes, int ranks);

    [[nodiscard]] std::byte* base() noexcept override { return base_; }
    [[nodiscard]] bool try_lock(int rank, LockType type) noexcept override;
    [[nodiscard]] bool try_lock_bounded(int rank, LockType type,
                                        std::chrono::milliseconds timeout) noexcept override;
    void unlock(int rank, LockType type) noexcept override;

private:
    /// One epoch lock word per rank, cache-line padded against false
    /// sharing between contended targets.
    struct alignas(64) EpochWord {
        std::atomic<std::uint32_t> word{0};
    };

    std::vector<std::uint64_t> buffer_;
    std::byte* base_ = nullptr;
    std::unique_ptr<EpochWord[]> locks_;
};

class ThreadTransport final : public Transport {
public:
    explicit ThreadTransport(int world_size);

    [[nodiscard]] TransportKind kind() const noexcept override {
        return TransportKind::Threads;
    }
    [[nodiscard]] Mailbox& mailbox(int world_rank) noexcept override {
        return *mailboxes_[static_cast<std::size_t>(world_rank)];
    }
    [[nodiscard]] std::unique_ptr<WindowStorage> allocate_window(std::size_t total_bytes,
                                                                 int ranks) override;
    void signal_abort() noexcept override;

    void beat(int world_rank) noexcept override {
        live_[static_cast<std::size_t>(world_rank)].beats.fetch_add(
            1, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t heartbeat(int world_rank) noexcept override {
        return live_[static_cast<std::size_t>(world_rank)].beats.load(
            std::memory_order_acquire);
    }
    void mark_dead(int world_rank) noexcept override {
        live_[static_cast<std::size_t>(world_rank)].dead.store(1, std::memory_order_release);
    }
    [[nodiscard]] bool is_dead(int world_rank) noexcept override {
        return live_[static_cast<std::size_t>(world_rank)].dead.load(
                   std::memory_order_acquire) != 0;
    }

private:
    /// One liveness line per rank: the heartbeat counter plus the sticky
    /// dead flag, padded so peers polling different ranks never share.
    struct alignas(64) LiveWord {
        std::atomic<std::uint64_t> beats{0};
        std::atomic<std::uint32_t> dead{0};
    };

    std::vector<std::unique_ptr<ThreadMailbox>> mailboxes_;
    std::unique_ptr<LiveWord[]> live_;
};

}  // namespace minimpi::detail
