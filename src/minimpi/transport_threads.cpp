/// \file transport_threads.cpp

#include "minimpi/transport_threads.hpp"

#include <algorithm>
#include <chrono>

namespace minimpi::detail {

// ---------------------------------------------------------- ThreadMailbox --

void ThreadMailbox::push(Envelope e, const std::atomic<bool>& /*abort*/) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(e));
    }
    cv_.notify_all();
}

Envelope ThreadMailbox::match(const MatchSpec& spec, const std::atomic<bool>& abort) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        if (auto e = take_locked(spec)) {
            return std::move(*e);
        }
        if (abort.load(std::memory_order_acquire)) {
            throw Error(ErrorCode::Aborted, "minimpi: runtime aborting (peer rank failed)");
        }
        cv_.wait_for(lock, std::chrono::milliseconds(50));
    }
}

std::optional<Envelope> ThreadMailbox::try_match(const MatchSpec& spec) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return take_locked(spec);
}

std::optional<Status> ThreadMailbox::peek(const MatchSpec& spec) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const Envelope& e : queue_) {
        if (spec.matches(e)) {
            return Status{e.src, e.tag, e.payload.size()};
        }
    }
    return std::nullopt;
}

void ThreadMailbox::interrupt() { cv_.notify_all(); }

std::size_t ThreadMailbox::pending() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

std::optional<Envelope> ThreadMailbox::take_locked(const MatchSpec& spec) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (spec.matches(*it)) {
            Envelope e = std::move(*it);
            queue_.erase(it);
            return e;
        }
    }
    return std::nullopt;
}

// ---------------------------------------------------- ThreadWindowStorage --

namespace {
constexpr std::size_t kSegmentAlign = 64;
}  // namespace

ThreadWindowStorage::ThreadWindowStorage(std::size_t total_bytes, int ranks)
    : buffer_((std::max<std::size_t>(total_bytes, 1) + sizeof(std::uint64_t) - 1) /
                      sizeof(std::uint64_t) +
                  kSegmentAlign / sizeof(std::uint64_t),
              0),
      locks_(std::make_unique<EpochWord[]>(static_cast<std::size_t>(ranks))) {
    const auto addr = reinterpret_cast<std::uintptr_t>(buffer_.data());
    const std::uintptr_t aligned = (addr + kSegmentAlign - 1) / kSegmentAlign * kSegmentAlign;
    base_ = reinterpret_cast<std::byte*>(aligned);
}

bool ThreadWindowStorage::try_lock(int rank, LockType type) noexcept {
    return epoch_try_lock(locks_[static_cast<std::size_t>(rank)].word, type);
}

bool ThreadWindowStorage::try_lock_bounded(int rank, LockType type,
                                           std::chrono::milliseconds timeout) noexcept {
    return epoch_try_lock_bounded(locks_[static_cast<std::size_t>(rank)].word, type, timeout);
}

void ThreadWindowStorage::unlock(int rank, LockType type) noexcept {
    epoch_unlock(locks_[static_cast<std::size_t>(rank)].word, type);
}

// -------------------------------------------------------- ThreadTransport --

ThreadTransport::ThreadTransport(int world_size)
    : live_(std::make_unique<LiveWord[]>(static_cast<std::size_t>(world_size))) {
    mailboxes_.reserve(static_cast<std::size_t>(world_size));
    for (int r = 0; r < world_size; ++r) {
        mailboxes_.push_back(std::make_unique<ThreadMailbox>());
    }
}

std::unique_ptr<WindowStorage> ThreadTransport::allocate_window(std::size_t total_bytes,
                                                                int ranks) {
    return std::make_unique<ThreadWindowStorage>(total_bytes, ranks);
}

void ThreadTransport::signal_abort() noexcept {
    for (auto& mb : mailboxes_) {
        mb->interrupt();
    }
}

}  // namespace minimpi::detail
