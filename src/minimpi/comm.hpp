#pragma once
/// \file comm.hpp
/// Communicators: point-to-point messaging, non-blocking requests and
/// collectives with MPI semantics.
///
/// A Comm is a cheap value handle. Copies held by the *same* rank share
/// their collective-sequence bookkeeping; using one communicator from two
/// threads of the same rank is undefined (as in MPI without THREAD_MULTIPLE).
///
/// Matching semantics follow MPI: receives match on (source, tag) with
/// kAnySource / kAnyTag wildcards, and messages between a given (sender,
/// tag) pair arrive in send order (non-overtaking). All sends are eager:
/// the payload is buffered at the destination and the send returns
/// immediately, so the usual MPI eager-protocol programs port one-to-one.

#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "minimpi/state.hpp"
#include "minimpi/topology.hpp"
#include "minimpi/types.hpp"

namespace minimpi {

class Comm;

/// Handle for a non-blocking operation (subset of MPI_Request).
/// Move-only; must be completed by wait()/test() before destruction to have
/// effect (an incomplete irecv simply never fills its buffer).
class Request {
public:
    Request() = default;
    Request(Request&&) noexcept = default;
    Request& operator=(Request&&) noexcept = default;
    Request(const Request&) = delete;
    Request& operator=(const Request&) = delete;

    /// Blocks until completion; fills the receive buffer for irecv.
    void wait();

    /// Non-blocking completion attempt; true once complete.
    [[nodiscard]] bool test();

    [[nodiscard]] bool done() const noexcept { return done_; }

    /// Completion status; only meaningful once done().
    [[nodiscard]] const Status& status() const noexcept { return status_; }

    /// Completes every request (MPI_Waitall).
    static void wait_all(std::span<Request> requests);

private:
    friend class Comm;

    struct RecvState {
        detail::RuntimeState* state = nullptr;
        detail::Mailbox* mailbox = nullptr;
        detail::MatchSpec spec;
        void* buffer = nullptr;
        std::size_t max_bytes = 0;
    };

    explicit Request(Status completed_send) : status_(completed_send), done_(true) {}
    explicit Request(RecvState rs) : recv_(rs) {}

    void complete_with(detail::Envelope e);

    std::optional<RecvState> recv_;
    Status status_{};
    bool done_ = false;
};

/// An ordered group of ranks with its own message-matching context.
class Comm {
public:
    /// Default-constructed handles are invalid; obtain real ones from
    /// Context::world(), dup(), split() or split_type().
    Comm() = default;

    [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
    [[nodiscard]] int rank() const noexcept { return rank_; }
    [[nodiscard]] int size() const noexcept {
        return meta_ ? static_cast<int>(meta_->members.size()) : 0;
    }
    [[nodiscard]] std::uint64_t id() const noexcept { return meta_ ? meta_->id : 0; }

    /// World rank backing a rank of this communicator.
    [[nodiscard]] int world_rank_of(int comm_rank) const;

    // ------------------------------------------------------------- p2p ----

    /// Eager (buffered) send; returns as soon as the payload is enqueued.
    void send_bytes(const void* data, std::size_t bytes, int dst, int tag) const;

    /// Blocking receive into `data` (capacity `max_bytes`); throws
    /// ErrorCode::Truncate if the matched message is larger.
    Status recv_bytes(void* data, std::size_t max_bytes, int src = kAnySource,
                      int tag = kAnyTag) const;

    template <Pod T>
    void send(const T& value, int dst, int tag = 0) const {
        send_bytes(&value, sizeof(T), dst, tag);
    }

    template <Pod T>
    void send(std::span<const T> values, int dst, int tag = 0) const {
        send_bytes(values.data(), values.size_bytes(), dst, tag);
    }

    template <Pod T>
    Status recv(T& value, int src = kAnySource, int tag = kAnyTag) const {
        return recv_bytes(&value, sizeof(T), src, tag);
    }

    template <Pod T>
    Status recv(std::span<T> values, int src = kAnySource, int tag = kAnyTag) const {
        return recv_bytes(values.data(), values.size_bytes(), src, tag);
    }

    /// Non-blocking send. Eager semantics mean it is complete on return;
    /// the Request exists for MPI-shaped code and wait_all symmetry.
    template <Pod T>
    [[nodiscard]] Request isend(std::span<const T> values, int dst, int tag = 0) const {
        send_bytes(values.data(), values.size_bytes(), dst, tag);
        return Request(Status{rank_, tag, values.size_bytes()});
    }

    /// Non-blocking receive; the buffer must outlive the Request and is
    /// filled by wait()/test().
    template <Pod T>
    [[nodiscard]] Request irecv(std::span<T> values, int src = kAnySource,
                                int tag = kAnyTag) const {
        return irecv_bytes(values.data(), values.size_bytes(), src, tag);
    }

    [[nodiscard]] Request irecv_bytes(void* data, std::size_t max_bytes, int src = kAnySource,
                                      int tag = kAnyTag) const;

    /// Non-blocking probe: status of the first matching pending message.
    [[nodiscard]] std::optional<Status> iprobe(int src = kAnySource, int tag = kAnyTag) const;

    /// Blocking probe.
    Status probe(int src = kAnySource, int tag = kAnyTag) const;

    // ------------------------------------------------------ collectives ----
    // All ranks of the communicator must call collectives in the same order
    // (standard MPI requirement); the implementation relies on it to pair
    // messages of concurrent collectives via a per-comm sequence number.

    void barrier() const;

    template <Pod T>
    void bcast(T& value, int root) const {
        bcast_bytes(&value, sizeof(T), root);
    }

    template <Pod T>
    void bcast(std::span<T> values, int root) const {
        bcast_bytes(values.data(), values.size_bytes(), root);
    }

    /// Element-wise reduction to `root` (commutative ops only). Ranks other
    /// than root receive `out` unchanged.
    template <Pod T>
    void reduce(std::span<const T> in, std::span<T> out, ReduceOp op, int root) const
        requires std::is_arithmetic_v<T>
    {
        check_same_extent(in.size(), out.size());
        reduce_bytes(in.data(), out.data(), sizeof(T) * in.size(), combiner_for<T>(op), sizeof(T),
                     root);
    }

    template <Pod T>
    [[nodiscard]] T reduce(const T& value, ReduceOp op, int root) const
        requires std::is_arithmetic_v<T>
    {
        T out{};
        reduce(std::span<const T>(&value, 1), std::span<T>(&out, 1), op, root);
        return out;
    }

    template <Pod T>
    void allreduce(std::span<const T> in, std::span<T> out, ReduceOp op) const
        requires std::is_arithmetic_v<T>
    {
        reduce(in, out, op, 0);
        bcast(out, 0);
    }

    template <Pod T>
    [[nodiscard]] T allreduce(const T& value, ReduceOp op) const
        requires std::is_arithmetic_v<T>
    {
        T out{};
        allreduce(std::span<const T>(&value, 1), std::span<T>(&out, 1), op);
        return out;
    }

    /// Gather fixed-size contributions; `out` must hold size()*in.size()
    /// elements at root (ignored elsewhere).
    template <Pod T>
    void gather(std::span<const T> in, std::span<T> out, int root) const {
        gather_bytes(in.data(), in.size_bytes(), rank_ == root ? out.data() : nullptr,
                     rank_ == root ? out.size_bytes() : 0, root);
    }

    /// Scalar gather convenience: root receives the vector, others empty.
    template <Pod T>
    [[nodiscard]] std::vector<T> gather(const T& value, int root) const {
        std::vector<T> out;
        if (rank_ == root) {
            out.resize(static_cast<std::size_t>(size()));
        }
        gather(std::span<const T>(&value, 1), std::span<T>(out), root);
        return out;
    }

    template <Pod T>
    void allgather(std::span<const T> in, std::span<T> out) const {
        gather(in, out, 0);
        bcast(out, 0);
    }

    template <Pod T>
    [[nodiscard]] std::vector<T> allgather(const T& value) const {
        std::vector<T> out(static_cast<std::size_t>(size()));
        allgather(std::span<const T>(&value, 1), std::span<T>(out));
        return out;
    }

    /// Scatter fixed-size pieces from root; returns this rank's piece.
    template <Pod T>
    void scatter(std::span<const T> in, std::span<T> out, int root) const {
        scatter_bytes(rank_ == root ? in.data() : nullptr, rank_ == root ? in.size_bytes() : 0,
                      out.data(), out.size_bytes(), root);
    }

    template <Pod T>
    [[nodiscard]] T scatter(std::span<const T> in, int root) const {
        T out{};
        scatter(in, std::span<T>(&out, 1), root);
        return out;
    }

    // ------------------------------------------------ comm management ----

    /// New communicator with the same group but a fresh matching context.
    [[nodiscard]] Comm dup() const;

    /// MPI_Comm_split: ranks with equal `color` form a new communicator,
    /// ordered by (key, old rank). color < 0 means "not participating"
    /// (returns an invalid Comm, like MPI_COMM_NULL).
    [[nodiscard]] Comm split(int color, int key) const;

    /// MPI_Comm_split_type(MPI_COMM_TYPE_SHARED): one communicator per
    /// simulated compute node.
    [[nodiscard]] Comm split_type(SplitType type, int key) const;

    /// Node id (in the runtime topology) hosting a rank of this comm.
    [[nodiscard]] int node_of(int comm_rank) const;

    // ------------------------------------------------------- liveness ----
    // Per-rank heartbeat words and the sticky dead set, owned by the
    // transport (see transport.hpp). These back lease-based fault
    // tolerance (core::LeaseBoard, docs/fault-tolerance.md): workers bump
    // their own word at chunk boundaries, a failure detector declares a
    // rank whose word stops moving dead, and the lease layer reclaims the
    // dead rank's unfinished chunks. Ranks are *this communicator's* ranks
    // (translated to world ranks internally).

    /// Bumps this rank's heartbeat counter.
    void beat() const;

    /// Reads a member's heartbeat counter.
    [[nodiscard]] std::uint64_t heartbeat_of(int comm_rank) const;

    /// Declares a member dead (sticky for the rest of the run).
    void mark_dead(int comm_rank) const;

    [[nodiscard]] bool is_dead(int comm_rank) const;

    /// Members not marked dead.
    [[nodiscard]] int alive() const;

    /// Polls the runtime abort flag and throws ErrorCode::Aborted when a
    /// peer failed — the check every lease-layer wait loop interleaves so
    /// it can never outlive an aborting team.
    void poll_abort() const { require_valid(); state_->check_abort(); }

private:
    friend class Context;
    friend class Runtime;
    friend class Window;

    Comm(detail::RuntimeState* state, std::shared_ptr<const detail::CommMeta> meta,
         int my_rank)
        : state_(state),
          meta_(std::move(meta)),
          counters_(std::make_shared<detail::CommCounters>()),
          rank_(my_rank) {}

    void require_valid() const;
    void check_dst(int dst) const;
    void check_tag(int tag, bool allow_wildcard) const;
    void check_src(int src) const;
    static void check_same_extent(std::size_t a, std::size_t b);

    // Collective-lane internals (implemented in comm.cpp).
    using Combiner = void (*)(void* acc, const void* in, std::size_t count);
    void bcast_bytes(void* data, std::size_t bytes, int root) const;
    void reduce_bytes(const void* in, void* out, std::size_t bytes, Combiner combine,
                      std::size_t elem_size, int root) const;
    void gather_bytes(const void* in, std::size_t in_bytes, void* out, std::size_t out_bytes,
                      int root) const;
    void scatter_bytes(const void* in, std::size_t in_bytes, void* out, std::size_t out_bytes,
                       int root) const;

    void coll_send(const void* data, std::size_t bytes, int dst, int phase,
                   std::uint64_t cseq) const;
    std::size_t coll_recv(void* data, std::size_t max_bytes, int src, int phase,
                          std::uint64_t cseq) const;

    template <Pod T>
    [[nodiscard]] static Combiner combiner_for(ReduceOp op) {
        switch (op) {
            case ReduceOp::Sum:
                return [](void* a, const void* b, std::size_t n) {
                    auto* x = static_cast<T*>(a);
                    const auto* y = static_cast<const T*>(b);
                    for (std::size_t i = 0; i < n; ++i) {
                        x[i] = static_cast<T>(x[i] + y[i]);
                    }
                };
            case ReduceOp::Prod:
                return [](void* a, const void* b, std::size_t n) {
                    auto* x = static_cast<T*>(a);
                    const auto* y = static_cast<const T*>(b);
                    for (std::size_t i = 0; i < n; ++i) {
                        x[i] = static_cast<T>(x[i] * y[i]);
                    }
                };
            case ReduceOp::Min:
                return [](void* a, const void* b, std::size_t n) {
                    auto* x = static_cast<T*>(a);
                    const auto* y = static_cast<const T*>(b);
                    for (std::size_t i = 0; i < n; ++i) {
                        x[i] = y[i] < x[i] ? y[i] : x[i];
                    }
                };
            case ReduceOp::Max:
                return [](void* a, const void* b, std::size_t n) {
                    auto* x = static_cast<T*>(a);
                    const auto* y = static_cast<const T*>(b);
                    for (std::size_t i = 0; i < n; ++i) {
                        x[i] = y[i] > x[i] ? y[i] : x[i];
                    }
                };
        }
        throw Error(ErrorCode::InvalidArgument, "minimpi: unknown ReduceOp");
    }

    detail::RuntimeState* state_ = nullptr;
    std::shared_ptr<const detail::CommMeta> meta_;
    std::shared_ptr<detail::CommCounters> counters_;
    int rank_ = -1;
};

}  // namespace minimpi
