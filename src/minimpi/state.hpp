#pragma once
/// \file state.hpp
/// Internal: process-wide state shared by all rank threads of one
/// Runtime::run invocation. Not part of the public API.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "minimpi/mailbox.hpp"
#include "minimpi/topology.hpp"
#include "minimpi/transport.hpp"

namespace minimpi::detail {

class WindowImpl;  // defined in window.cpp

struct RuntimeState {
    int world_size = 0;
    Topology topology;

    /// The substrate carrying this run: mailboxes, window storage, abort
    /// propagation. Owned here; rank threads only hold references.
    std::unique_ptr<Transport> transport;

    [[nodiscard]] Mailbox& mailbox(int world_rank) noexcept {
        return transport->mailbox(world_rank);
    }

    /// Set when any rank throws; blocking operations poll it and bail out
    /// with ErrorCode::Aborted so the whole team unwinds instead of hanging.
    std::atomic<bool> abort{false};

    /// Window registry: allocate_shared creates the impl on the lowest rank
    /// and peers attach by id after a broadcast.
    std::atomic<std::uint64_t> next_window_id{1};
    std::mutex window_mutex;
    std::unordered_map<std::uint64_t, std::shared_ptr<WindowImpl>> windows;

    void interrupt_all() {
        if (transport) {
            transport->signal_abort();
        }
    }

    void check_abort() const {
        if (abort.load(std::memory_order_acquire)) {
            throw Error(ErrorCode::Aborted, "minimpi: runtime aborting (peer rank failed)");
        }
    }
};

/// Per-rank, per-communicator bookkeeping shared between copies of a Comm
/// handle held by the same rank (collective call sequence, split counter).
struct CommCounters {
    std::uint64_t collective_seq = 0;
    std::uint64_t split_seq = 0;
};

/// Immutable description of a communicator's group, shared by the rank's
/// Comm copies. Every member derives an identical `id` deterministically,
/// so envelopes route without any central registration.
struct CommMeta {
    std::uint64_t id = 0;
    std::vector<int> members;  // comm rank -> world rank
};

}  // namespace minimpi::detail
