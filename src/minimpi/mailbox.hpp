#pragma once
/// \file mailbox.hpp
/// Internal: per-rank message queue with MPI matching semantics.
///
/// Sends are *eager*: the payload is copied into the destination mailbox
/// and the send completes immediately (MPI's buffered/eager protocol).
/// Receives scan the queue front-to-back for the first envelope matching
/// (comm, source, tag, lane), which yields MPI's non-overtaking guarantee:
/// two messages from the same sender with the same tag are received in
/// send order.
///
/// Not part of the public API.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "minimpi/types.hpp"

namespace minimpi::detail {

/// A message in flight. `collective` separates the runtime-internal
/// collective lane from user point-to-point traffic; `cseq` disambiguates
/// successive collectives on the same communicator.
struct Envelope {
    std::uint64_t comm_id = 0;
    int src = 0;  ///< comm rank of the sender
    int tag = 0;
    bool collective = false;
    std::uint64_t cseq = 0;
    std::vector<std::byte> payload;
};

/// Matching criteria for a receive/probe.
struct MatchSpec {
    std::uint64_t comm_id = 0;
    int src = kAnySource;
    int tag = kAnyTag;
    bool collective = false;
    std::uint64_t cseq = 0;

    [[nodiscard]] bool matches(const Envelope& e) const noexcept {
        if (e.comm_id != comm_id || e.collective != collective) {
            return false;
        }
        if (collective && e.cseq != cseq) {
            return false;
        }
        if (src != kAnySource && e.src != src) {
            return false;
        }
        if (tag != kAnyTag && e.tag != tag) {
            return false;
        }
        return true;
    }
};

/// One mailbox per world rank; all communicators share it (envelopes carry
/// the communicator id).
class Mailbox {
public:
    void push(Envelope e) {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            queue_.push_back(std::move(e));
        }
        cv_.notify_all();
    }

    /// Blocking matched pop. Polls the abort flag so a failing rank
    /// elsewhere unblocks this one instead of deadlocking the process.
    Envelope match(const MatchSpec& spec, const std::atomic<bool>& abort) {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            if (auto e = take_locked(spec)) {
                return std::move(*e);
            }
            if (abort.load(std::memory_order_acquire)) {
                throw Error(ErrorCode::Aborted, "minimpi: runtime aborting (peer rank failed)");
            }
            cv_.wait_for(lock, std::chrono::milliseconds(50));
        }
    }

    /// Non-blocking matched pop.
    std::optional<Envelope> try_match(const MatchSpec& spec) {
        const std::lock_guard<std::mutex> lock(mutex_);
        return take_locked(spec);
    }

    /// Non-destructive probe: status of the first matching envelope.
    std::optional<Status> peek(const MatchSpec& spec) {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (const Envelope& e : queue_) {
            if (spec.matches(e)) {
                return Status{e.src, e.tag, e.payload.size()};
            }
        }
        return std::nullopt;
    }

    /// Wakes blocked receivers so they can observe the abort flag.
    void interrupt() { cv_.notify_all(); }

    /// Number of queued envelopes (tests / leak detection).
    [[nodiscard]] std::size_t pending() {
        const std::lock_guard<std::mutex> lock(mutex_);
        return queue_.size();
    }

private:
    std::optional<Envelope> take_locked(const MatchSpec& spec) {
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (spec.matches(*it)) {
                Envelope e = std::move(*it);
                queue_.erase(it);
                return e;
            }
        }
        return std::nullopt;
    }

    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Envelope> queue_;
};

}  // namespace minimpi::detail
