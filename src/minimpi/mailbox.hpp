#pragma once
/// \file mailbox.hpp
/// Internal: the per-rank message-queue *interface* with MPI matching
/// semantics. Each Transport supplies its own implementation (see
/// transport.hpp): the thread transport a mutex+condvar deque, the shm
/// transport a lock-word slot table inside the shared segment.
///
/// Sends are *eager*: the payload is copied into the destination mailbox
/// and the send completes as soon as the envelope is enqueued (MPI's
/// buffered/eager protocol; a transport with bounded buffering may block
/// the sender until a slot frees, which preserves eager semantics for any
/// program that was correct under finite MPI buffering). Receives scan the
/// queue front-to-back for the first envelope matching (comm, source, tag,
/// lane), which yields MPI's non-overtaking guarantee: two messages from
/// the same sender with the same tag are received in send order.
///
/// Abort contract: every potentially blocking entry point (push under
/// backpressure, match) takes the runtime's abort flag and must observe it
/// in bounded time, throwing ErrorCode::Aborted — a failing peer rank may
/// never produce the message a receiver is parked on.
///
/// Not part of the public API.

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "minimpi/types.hpp"

namespace minimpi::detail {

/// A message in flight. `collective` separates the runtime-internal
/// collective lane from user point-to-point traffic; `cseq` disambiguates
/// successive collectives on the same communicator.
struct Envelope {
    std::uint64_t comm_id = 0;
    int src = 0;  ///< comm rank of the sender
    int tag = 0;
    bool collective = false;
    std::uint64_t cseq = 0;
    std::vector<std::byte> payload;
};

/// Matching criteria for a receive/probe.
struct MatchSpec {
    std::uint64_t comm_id = 0;
    int src = kAnySource;
    int tag = kAnyTag;
    bool collective = false;
    std::uint64_t cseq = 0;

    [[nodiscard]] bool matches(const Envelope& e) const noexcept {
        if (e.comm_id != comm_id || e.collective != collective) {
            return false;
        }
        if (collective && e.cseq != cseq) {
            return false;
        }
        if (src != kAnySource && e.src != src) {
            return false;
        }
        if (tag != kAnyTag && e.tag != tag) {
            return false;
        }
        return true;
    }
};

/// One mailbox per world rank; all communicators share it (envelopes carry
/// the communicator id).
class Mailbox {
public:
    virtual ~Mailbox() = default;

    /// Eager enqueue. A bounded-buffer transport may block until a slot
    /// frees; it must then poll `abort` and throw ErrorCode::Aborted
    /// rather than wait on a dead peer.
    virtual void push(Envelope e, const std::atomic<bool>& abort) = 0;

    /// Blocking matched pop. Polls the abort flag so a failing rank
    /// elsewhere unblocks this one instead of deadlocking the process.
    virtual Envelope match(const MatchSpec& spec, const std::atomic<bool>& abort) = 0;

    /// Non-blocking matched pop.
    virtual std::optional<Envelope> try_match(const MatchSpec& spec) = 0;

    /// Non-destructive probe: status of the first matching envelope.
    virtual std::optional<Status> peek(const MatchSpec& spec) = 0;

    /// Wakes blocked receivers so they can observe the abort flag (a no-op
    /// for transports whose waits are polled).
    virtual void interrupt() = 0;

    /// Number of queued envelopes (tests / leak detection).
    [[nodiscard]] virtual std::size_t pending() = 0;
};

}  // namespace minimpi::detail
