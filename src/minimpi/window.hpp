#pragma once
/// \file window.hpp
/// One-sided (RMA) windows with MPI-3 passive-target semantics, including
/// the shared-memory windows (MPI_Win_allocate_shared) at the heart of the
/// paper's MPI+MPI approach.
///
/// Semantics preserved from MPI-3:
///  * allocate_shared is collective over a communicator whose ranks share a
///    node; each rank contributes a segment and can address every segment
///    directly (shared_query).
///  * lock/unlock open and close passive-target access epochs; Exclusive
///    locks on the same target rank are mutually exclusive, Shared locks
///    admit concurrent readers.
///  * fetch_and_op / compare_and_swap are element-wise atomic with respect
///    to every other accumulate access to the same location, regardless of
///    locks — exactly the property the distributed chunk-calculation
///    protocol relies on.
///  * flush/sync order memory accesses (mapped to seq-cst fences here).
///
/// The backing store and the lock table live behind the transport seam
/// (detail::WindowStorage): a heap buffer on the thread transport, the
/// shm arena on the shm transport, both with per-rank epoch lock words
/// (lock_word.hpp — releasable from any thread, because epochs belong to
/// Window handles and a handle may be destroyed anywhere). Window itself
/// only computes offsets and enforces epoch/abort semantics.

#include <atomic>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>

#include "minimpi/backoff.hpp"
#include "minimpi/comm.hpp"
#include "minimpi/transport.hpp"

namespace minimpi {

/// Request handle of a nonblocking CAS-retry transform (the request-based
/// RMA shape of MPI_Rget_accumulate + MPI_Test/MPI_Wait): the origin
/// issues the update with Window::start_atomic_update, overlaps whatever
/// it likes, and completes through test()/wait(). Each test() makes
/// exactly one compare-and-swap attempt — a failed attempt refreshes the
/// expected value and advances the Backoff ladder, so a polling origin
/// degrades as gracefully as a blocked Window::lock origin does.
///
/// A default-constructed request is already complete (the empty request,
/// MPI_REQUEST_NULL): test() is true, wait() returns T{}.
template <typename T>
class AtomicUpdateRequest {
public:
    AtomicUpdateRequest() = default;

    /// True once the update has been applied (the empty request counts as
    /// complete).
    [[nodiscard]] bool done() const noexcept { return done_; }

    /// One completion attempt: applies f to the freshest observed value
    /// via compare-and-swap. Returns true when the update landed; on
    /// contention records the new observed value, backs off once and
    /// returns false. `f` may thus be evaluated several times and must be
    /// side-effect free (the atomic_update contract). Throws
    /// ErrorCode::Aborted if the runtime is unwinding — a pending request
    /// never spins past a peer failure.
    bool test() {
        if (done_) {
            return true;
        }
        if (const auto applied = attempt_()) {
            result_ = *applied;
            done_ = true;
            hdls::metrics::rt().window_requests_completed->inc();
            return true;
        }
        hdls::metrics::rt().window_cas_retries->inc();
        backoff_.pause();
        return false;
    }

    /// Drives test() to completion and returns the value the update was
    /// applied to (the fetch result, as Window::atomic_update returns).
    T wait() {
        while (!test()) {
        }
        return result_;
    }

    /// The fetch result; only meaningful once done().
    [[nodiscard]] T result() const noexcept { return result_; }

private:
    friend class Window;
    /// `attempt` performs one CAS try, owning the in-progress state (the
    /// last observed value) in its closure; an engaged return is the value
    /// the transform was applied to.
    explicit AtomicUpdateRequest(std::function<std::optional<T>()> attempt)
        : attempt_(std::move(attempt)), done_(false) {}

    std::function<std::optional<T>()> attempt_;
    bool done_ = true;
    T result_{};
    Backoff backoff_;
};

namespace detail {

/// Layout + storage of one window; shared by every attached rank's Window
/// handle. The storage (backing bytes and the passive-target lock table)
/// is owned by the transport-specific WindowStorage.
class WindowImpl {
public:
    WindowImpl(std::uint64_t id, CommMeta meta, std::vector<std::size_t> offsets,
               std::vector<std::size_t> sizes, std::unique_ptr<WindowStorage> storage)
        : id_(id),
          meta_(std::move(meta)),
          offsets_(std::move(offsets)),
          sizes_(std::move(sizes)),
          storage_(std::move(storage)) {}

    [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
    [[nodiscard]] int size() const noexcept { return static_cast<int>(meta_.members.size()); }
    [[nodiscard]] std::byte* base() noexcept { return storage_->base(); }
    [[nodiscard]] std::byte* segment(int rank) noexcept {
        return base() + offsets_[static_cast<std::size_t>(rank)];
    }
    [[nodiscard]] std::size_t segment_size(int rank) const noexcept {
        return sizes_[static_cast<std::size_t>(rank)];
    }
    [[nodiscard]] WindowStorage& storage() noexcept { return *storage_; }
    [[nodiscard]] const CommMeta& meta() const noexcept { return meta_; }

private:
    std::uint64_t id_;
    CommMeta meta_;
    std::vector<std::size_t> offsets_;
    std::vector<std::size_t> sizes_;
    std::unique_ptr<WindowStorage> storage_;
};

}  // namespace detail

/// RMA window handle (value type; copies refer to the same window).
///
/// Epoch ownership: open epochs belong to the *handle* that opened them,
/// not to the window. A copy starts with no open epochs of its own; a move
/// transfers them; destroying a handle releases whatever epochs it still
/// holds (so a rank unwinding on an exception cannot leave a target locked
/// forever — the peer-failure contract).
class Window {
public:
    Window() = default;
    ~Window() { release_held(); }

    Window(const Window& other) : impl_(other.impl_), comm_(other.comm_), rank_(other.rank_) {}
    Window& operator=(const Window& other) {
        if (this != &other) {
            release_held();
            impl_ = other.impl_;
            comm_ = other.comm_;
            rank_ = other.rank_;
        }
        return *this;
    }
    Window(Window&& other) noexcept
        : impl_(std::move(other.impl_)),
          comm_(std::move(other.comm_)),
          rank_(other.rank_),
          held_(std::move(other.held_)) {
        other.held_.clear();
        other.rank_ = -1;
    }
    Window& operator=(Window&& other) noexcept {
        if (this != &other) {
            release_held();
            impl_ = std::move(other.impl_);
            comm_ = std::move(other.comm_);
            rank_ = other.rank_;
            held_ = std::move(other.held_);
            other.held_.clear();
            other.rank_ = -1;
        }
        return *this;
    }

    /// Collective over `comm`: allocates `local_bytes` for the calling rank
    /// inside one contiguous shared region. Every rank's segment is 64-byte
    /// aligned *absolutely* (the storage base is rounded up to 64 and
    /// segments are padded to 64-byte multiples), on both transports —
    /// matching the `alloc_shared_noncontig` layout real MPIs use, so
    /// cache-line-padded cells laid out in a segment never straddle lines.
    [[nodiscard]] static Window allocate_shared(const Comm& comm, std::size_t local_bytes);

    /// MPI_Win_allocate. Under this runtime every window is physically
    /// shared, so this is allocate_shared with the same semantics for
    /// get/put/atomics; only direct load/store addressing of remote
    /// segments is (by convention) reserved for shared windows.
    [[nodiscard]] static Window allocate(const Comm& comm, std::size_t local_bytes);

    [[nodiscard]] bool valid() const noexcept { return impl_ != nullptr; }
    [[nodiscard]] int rank() const noexcept { return rank_; }
    [[nodiscard]] int size() const noexcept { return impl_ ? impl_->size() : 0; }

    /// This rank's segment.
    [[nodiscard]] std::span<std::byte> local_span() const;

    /// Address and size of any rank's segment (MPI_Win_shared_query).
    [[nodiscard]] std::pair<std::byte*, std::size_t> shared_query(int target_rank) const;

    /// Typed view of a target segment (shared windows are meant to be
    /// addressed directly once queried).
    template <Pod T>
    [[nodiscard]] std::span<T> shared_span(int target_rank) const {
        auto [ptr, bytes] = shared_query(target_rank);
        return {reinterpret_cast<T*>(ptr), bytes / sizeof(T)};
    }

    // ------------------------------------------------ passive target ----

    /// Opens an access epoch on `target_rank` (MPI_Win_lock). Exclusive
    /// epochs are mutually exclusive per target; Shared epochs admit
    /// concurrent holders. Acquisition polls the runtime abort flag
    /// between attempts (under every LockPolicy, including Block), so a
    /// rank contending for an epoch a failed peer still holds unwinds
    /// with ErrorCode::Aborted instead of hanging.
    void lock(LockType type, int target_rank) const;

    /// Closes the epoch opened by lock() (MPI_Win_unlock). Throws if no
    /// epoch is open on that target from this handle.
    void unlock(int target_rank) const;

    /// Shared lock on every rank (MPI_Win_lock_all / unlock_all). If any
    /// acquisition throws, the epochs this call already opened are rolled
    /// back before the exception propagates — lock_all is all-or-nothing.
    void lock_all() const;
    void unlock_all() const;

    // ------------------------------------------------------ accumulate ----

    /// Atomically applies `op` to the element at `elem_offset` (in units of
    /// T) of `target_rank`'s segment and returns the *previous* value
    /// (MPI_Fetch_and_op).
    template <Pod T>
    T fetch_and_op(T operand, int target_rank, std::size_t elem_offset, AccumulateOp op) const
        requires std::is_arithmetic_v<T>
    {
        T* addr = checked_address<T>(target_rank, elem_offset);
        std::atomic_ref<T> cell(*addr);
        switch (op) {
            case AccumulateOp::Sum:
                if constexpr (std::is_integral_v<T>) {
                    return cell.fetch_add(operand, std::memory_order_acq_rel);
                } else {
                    T old = cell.load(std::memory_order_acquire);
                    while (!cell.compare_exchange_weak(old, static_cast<T>(old + operand),
                                                       std::memory_order_acq_rel)) {
                    }
                    return old;
                }
            case AccumulateOp::Replace:
                return cell.exchange(operand, std::memory_order_acq_rel);
            case AccumulateOp::Min: {
                T old = cell.load(std::memory_order_acquire);
                while (operand < old && !cell.compare_exchange_weak(old, operand,
                                                                    std::memory_order_acq_rel)) {
                }
                return old;
            }
            case AccumulateOp::Max: {
                T old = cell.load(std::memory_order_acquire);
                while (operand > old && !cell.compare_exchange_weak(old, operand,
                                                                    std::memory_order_acq_rel)) {
                }
                return old;
            }
            case AccumulateOp::NoOp:
                return cell.load(std::memory_order_acquire);
        }
        throw Error(ErrorCode::InvalidArgument, "minimpi: unknown AccumulateOp");
    }

    /// Atomic read (MPI_Fetch_and_op with MPI_NO_OP).
    template <Pod T>
    [[nodiscard]] T atomic_read(int target_rank, std::size_t elem_offset) const
        requires std::is_arithmetic_v<T>
    {
        return fetch_and_op<T>(T{}, target_rank, elem_offset, AccumulateOp::NoOp);
    }

    /// Atomic write (MPI_Accumulate with MPI_REPLACE).
    template <Pod T>
    void atomic_write(T value, int target_rank, std::size_t elem_offset) const
        requires std::is_arithmetic_v<T>
    {
        (void)fetch_and_op<T>(value, target_rank, elem_offset, AccumulateOp::Replace);
    }

    /// MPI_Compare_and_swap: atomically replaces the element with `desired`
    /// iff it equals `expected`; returns the previous value.
    template <Pod T>
    T compare_and_swap(T expected, T desired, int target_rank, std::size_t elem_offset) const
        requires std::is_integral_v<T>
    {
        T* addr = checked_address<T>(target_rank, elem_offset);
        std::atomic_ref<T> cell(*addr);
        T exp = expected;
        cell.compare_exchange_strong(exp, desired, std::memory_order_acq_rel);
        return exp;  // previous value whether or not the swap happened
    }

    /// CAS-retry transform: atomically replaces the element with
    /// `f(current)` and returns the value the update was applied to. Built
    /// from compare_and_swap exactly as an MPI program would loop
    /// MPI_Compare_and_swap; `f` may be evaluated several times under
    /// contention and must be side-effect free. This is the primitive behind
    /// the adaptive queue's remaining-iterations cell, where the new value
    /// depends on the old (new = old - chunk(old)). Each failed CAS polls
    /// the runtime abort flag, so the retry loop observes a peer failure
    /// in bounded time.
    template <Pod T, typename F>
    T atomic_update(int target_rank, std::size_t elem_offset, F&& f) const
        requires std::is_integral_v<T>
    {
        T old = atomic_read<T>(target_rank, elem_offset);
        for (;;) {
            const T desired = static_cast<T>(f(old));
            const T prev = compare_and_swap<T>(old, desired, target_rank, elem_offset);
            if (prev == old) {
                return old;
            }
            comm_.state_->check_abort();
            hdls::metrics::rt().window_cas_retries->inc();
            old = prev;
        }
    }

    /// Nonblocking atomic_update (the request form: MPI_Rget_accumulate +
    /// MPI_Test/MPI_Wait): issues the CAS-retry transform and returns its
    /// request handle instead of spinning to completion. The origin may
    /// overlap computation or other communication and complete the update
    /// later via the handle's test()/wait(); contended completions retry
    /// one CAS per test() under the same Backoff ladder as a blocked
    /// Window::lock, and every attempt observes the runtime abort flag.
    /// The returned handle keeps the window alive; `f` must be side-effect
    /// free (it may run once per completion attempt).
    template <Pod T, typename F>
    [[nodiscard]] AtomicUpdateRequest<T> start_atomic_update(int target_rank,
                                                             std::size_t elem_offset,
                                                             F f) const
        requires std::is_integral_v<T>
    {
        // Validate the access eagerly: a bad target/offset must throw at
        // issue time, not at first test().
        (void)checked_address<T>(target_rank, elem_offset);
        return AtomicUpdateRequest<T>(
            [win = *this, target_rank, elem_offset, f = std::move(f),
             observed = std::optional<T>{}]() mutable -> std::optional<T> {
                win.comm_.state_->check_abort();
                if (!observed) {
                    observed = win.template atomic_read<T>(target_rank, elem_offset);
                }
                const T desired = static_cast<T>(f(*observed));
                const T prev = win.template compare_and_swap<T>(*observed, desired,
                                                                target_rank, elem_offset);
                if (prev == *observed) {
                    return *observed;
                }
                observed = prev;  // refreshed for the next attempt
                return std::nullopt;
            });
    }

    // ------------------------------------------------------------ put/get --

    /// Copies into the target segment. Not atomic: the caller must hold an
    /// epoch (lock) covering concurrent writers, as in MPI.
    template <Pod T>
    void put(std::span<const T> values, int target_rank, std::size_t elem_offset) const {
        T* addr = checked_address<T>(target_rank, elem_offset, values.size());
        if (!values.empty()) {
            std::memcpy(addr, values.data(), values.size_bytes());
        }
    }

    template <Pod T>
    void get(std::span<T> values, int target_rank, std::size_t elem_offset) const {
        T* addr = checked_address<T>(target_rank, elem_offset, values.size());
        if (!values.empty()) {
            std::memcpy(values.data(), addr, values.size_bytes());
        }
    }

    // ------------------------------------------------------ completion ----

    /// Orders RMA accesses (MPI_Win_flush / MPI_Win_sync). In-process
    /// windows need only a memory fence.
    void flush(int target_rank) const;
    void flush_all() const;
    void sync() const;

    /// Collective teardown (MPI_Win_free). The handle becomes invalid even
    /// if the closing barrier throws (a peer failed mid-free); the window
    /// registry entry is dropped either way — no leak on abort.
    void free();

private:
    Window(std::shared_ptr<detail::WindowImpl> impl, Comm comm)
        : impl_(std::move(impl)), comm_(std::move(comm)), rank_(comm_.rank()) {}

    void require_valid() const;
    void check_target(int target_rank) const;
    void release_held() noexcept;

    template <Pod T>
    [[nodiscard]] T* checked_address(int target_rank, std::size_t elem_offset,
                                     std::size_t elems = 1) const {
        require_valid();
        check_target(target_rank);
        const std::size_t byte_off = elem_offset * sizeof(T);
        const std::size_t need = byte_off + elems * sizeof(T);
        if (need > impl_->segment_size(target_rank)) {
            throw Error(ErrorCode::WindowUsage,
                        "minimpi: window access past the end of the target segment");
        }
        std::byte* addr = impl_->segment(target_rank) + byte_off;
        if (reinterpret_cast<std::uintptr_t>(addr) % alignof(T) != 0) {
            throw Error(ErrorCode::WindowUsage, "minimpi: misaligned window access");
        }
        return reinterpret_cast<T*>(addr);
    }

    std::shared_ptr<detail::WindowImpl> impl_;
    Comm comm_;
    int rank_ = -1;
    /// Open epochs held by this handle (target rank -> lock type); a plain
    /// map is fine because a handle belongs to a single rank thread.
    mutable std::unordered_map<int, LockType> held_;
};

}  // namespace minimpi
