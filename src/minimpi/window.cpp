/// \file window.cpp
/// Window creation, attachment and passive-target lock management.

#include "minimpi/window.hpp"

#include <algorithm>
#include <chrono>

#include "minimpi/backoff.hpp"

namespace minimpi {

namespace {
constexpr std::size_t kSegmentAlign = 64;  // cache-line align each rank's segment

[[nodiscard]] std::size_t align_up(std::size_t v) noexcept {
    return (v + kSegmentAlign - 1) / kSegmentAlign * kSegmentAlign;
}

std::atomic<LockPolicy> g_lock_policy{LockPolicy::Backoff};

/// How long one LockPolicy::Block slice may park in the OS before the
/// acquire loop looks at the abort flag again.
constexpr std::chrono::milliseconds kBlockSlice{50};

/// Acquires an epoch on `storage` via the configured polling discipline.
/// Every discipline — including Block, whose waits are bounded try-lock
/// slices — polls the runtime abort flag between attempts, so a rank
/// contending for a lock a failed peer still holds throws Aborted in
/// bounded time instead of hanging. Every epoch counts one
/// hdls_window_locks_total; each failed attempt (or expired Block slice)
/// is a hdls_window_lock_retries_total.
void acquire_polled(const detail::RuntimeState& state, detail::WindowStorage& storage,
                    int target_rank, LockType type) {
    hdls::metrics::rt().window_locks->inc();
    switch (g_lock_policy.load(std::memory_order_relaxed)) {
        case LockPolicy::Block:
            while (!storage.try_lock_bounded(target_rank, type, kBlockSlice)) {
                state.check_abort();
                hdls::metrics::rt().window_lock_retries->inc();
            }
            return;
        case LockPolicy::Spin:
            while (!storage.try_lock(target_rank, type)) {
                state.check_abort();
                hdls::metrics::rt().window_lock_retries->inc();
                std::this_thread::yield();
            }
            return;
        case LockPolicy::Backoff: {
            Backoff backoff;
            while (!storage.try_lock(target_rank, type)) {
                state.check_abort();
                hdls::metrics::rt().window_lock_retries->inc();
                backoff.pause();
            }
            return;
        }
    }
}
}  // namespace

LockPolicy lock_policy() noexcept {
    return g_lock_policy.load(std::memory_order_relaxed);
}

void set_lock_policy(LockPolicy policy) noexcept {
    g_lock_policy.store(policy, std::memory_order_relaxed);
}

Window Window::allocate_shared(const Comm& comm, std::size_t local_bytes) {
    if (!comm.valid()) {
        throw Error(ErrorCode::InvalidArgument, "minimpi: allocate_shared on invalid comm");
    }
    detail::RuntimeState* state = comm.state_;
    const int p = comm.size();

    // Everyone learns everyone's contribution and derives identical layout.
    const auto mine = static_cast<std::uint64_t>(local_bytes);
    std::vector<std::uint64_t> contributions(static_cast<std::size_t>(p));
    comm.allgather(std::span<const std::uint64_t>(&mine, 1),
                   std::span<std::uint64_t>(contributions));
    std::vector<std::size_t> offsets(static_cast<std::size_t>(p));
    std::vector<std::size_t> sizes(static_cast<std::size_t>(p));
    std::size_t total = 0;
    for (int r = 0; r < p; ++r) {
        offsets[static_cast<std::size_t>(r)] = total;
        sizes[static_cast<std::size_t>(r)] = contributions[static_cast<std::size_t>(r)];
        total += align_up(contributions[static_cast<std::size_t>(r)]);
    }

    // Rank 0 asks the transport for storage (backing bytes + lock table),
    // registers the impl and broadcasts the id; the bcast's happens-before
    // edge guarantees peers find it.
    std::uint64_t win_id = 0;
    if (comm.rank() == 0) {
        win_id = state->next_window_id.fetch_add(1, std::memory_order_relaxed);
        auto storage =
            state->transport->allocate_window(std::max<std::size_t>(total, 1), p);
        auto impl = std::make_shared<detail::WindowImpl>(win_id, *comm.meta_, offsets, sizes,
                                                         std::move(storage));
        const std::lock_guard<std::mutex> lock(state->window_mutex);
        state->windows.emplace(win_id, std::move(impl));
    }
    comm.bcast(win_id, 0);

    std::shared_ptr<detail::WindowImpl> impl;
    {
        const std::lock_guard<std::mutex> lock(state->window_mutex);
        const auto it = state->windows.find(win_id);
        if (it == state->windows.end()) {
            throw Error(ErrorCode::Internal, "minimpi: window id not registered");
        }
        impl = it->second;
    }
    return Window(std::move(impl), comm);
}

Window Window::allocate(const Comm& comm, std::size_t local_bytes) {
    return allocate_shared(comm, local_bytes);
}

void Window::require_valid() const {
    if (!valid()) {
        throw Error(ErrorCode::WindowUsage, "minimpi: operation on an invalid window");
    }
}

void Window::check_target(int target_rank) const {
    if (target_rank < 0 || target_rank >= size()) {
        throw Error(ErrorCode::InvalidRank, "minimpi: window target rank out of range");
    }
}

void Window::release_held() noexcept {
    if (impl_) {
        for (const auto& [target, type] : held_) {
            impl_->storage().unlock(target, type);
        }
    }
    held_.clear();
}

std::span<std::byte> Window::local_span() const {
    require_valid();
    return {impl_->segment(rank_), impl_->segment_size(rank_)};
}

std::pair<std::byte*, std::size_t> Window::shared_query(int target_rank) const {
    require_valid();
    check_target(target_rank);
    return {impl_->segment(target_rank), impl_->segment_size(target_rank)};
}

void Window::lock(LockType type, int target_rank) const {
    require_valid();
    check_target(target_rank);
    comm_.state_->check_abort();
    if (held_.contains(target_rank)) {
        throw Error(ErrorCode::WindowUsage,
                    "minimpi: nested lock on the same window target (epochs may not overlap)");
    }
    acquire_polled(*comm_.state_, impl_->storage(), target_rank, type);
    held_.emplace(target_rank, type);
}

void Window::unlock(int target_rank) const {
    require_valid();
    check_target(target_rank);
    const auto it = held_.find(target_rank);
    if (it == held_.end()) {
        throw Error(ErrorCode::WindowUsage, "minimpi: unlock without a matching lock");
    }
    impl_->storage().unlock(target_rank, it->second);
    held_.erase(it);
}

void Window::lock_all() const {
    require_valid();
    int locked = 0;
    try {
        for (; locked < size(); ++locked) {
            lock(LockType::Shared, locked);
        }
    } catch (...) {
        // All-or-nothing: roll back the epochs this call opened (ranks
        // below `locked` were acquired by the loop itself — a pre-held
        // epoch would have thrown before being counted).
        for (int r = 0; r < locked; ++r) {
            unlock(r);
        }
        throw;
    }
}

void Window::unlock_all() const {
    require_valid();
    for (int r = 0; r < size(); ++r) {
        unlock(r);
    }
}

void Window::flush(int target_rank) const {
    require_valid();
    check_target(target_rank);
    std::atomic_thread_fence(std::memory_order_seq_cst);
}

void Window::flush_all() const {
    require_valid();
    std::atomic_thread_fence(std::memory_order_seq_cst);
}

void Window::sync() const {
    require_valid();
    std::atomic_thread_fence(std::memory_order_seq_cst);
}

void Window::free() {
    require_valid();
    if (!held_.empty()) {
        throw Error(ErrorCode::WindowUsage, "minimpi: freeing a window with open epochs");
    }
    const std::uint64_t id = impl_->id();
    detail::RuntimeState* state = comm_.state_;
    const int my_rank = comm_.rank();
    // Invalidate the handle before the closing barrier: whatever happens
    // to a peer mid-free, this handle must not be left half-freed.
    Comm comm = std::move(comm_);
    comm_ = Comm();
    impl_.reset();
    rank_ = -1;
    try {
        comm.barrier();  // all ranks must be done with the window
    } catch (...) {
        // A peer failed mid-free. Drop the registry entry anyway (erase is
        // idempotent, so every surviving rank may do this) — the registry
        // must not leak the backing store just because the run aborted.
        const std::lock_guard<std::mutex> lock(state->window_mutex);
        state->windows.erase(id);
        throw;
    }
    if (my_rank == 0) {
        const std::lock_guard<std::mutex> lock(state->window_mutex);
        state->windows.erase(id);
    }
}

}  // namespace minimpi
