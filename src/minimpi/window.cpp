/// \file window.cpp
/// Window creation, attachment and passive-target lock management.

#include "minimpi/window.hpp"

#include "minimpi/backoff.hpp"

namespace minimpi {

namespace {
constexpr std::size_t kSegmentAlign = 64;  // cache-line align each rank's segment

[[nodiscard]] std::size_t align_up(std::size_t v) noexcept {
    return (v + kSegmentAlign - 1) / kSegmentAlign * kSegmentAlign;
}

std::atomic<LockPolicy> g_lock_policy{LockPolicy::Backoff};

/// Acquires via the configured polling discipline: `try_acquire` is the
/// lock-attempt message, `block` the OS fallback of LockPolicy::Block.
/// Every epoch counts one hdls_window_locks_total; each failed poll is a
/// hdls_window_lock_retries_total (invisible under Block — the OS owns
/// the wait there).
template <typename TryFn, typename BlockFn>
void acquire_polled(TryFn&& try_acquire, BlockFn&& block) {
    hdls::metrics::rt().window_locks->inc();
    switch (g_lock_policy.load(std::memory_order_relaxed)) {
        case LockPolicy::Block:
            block();
            return;
        case LockPolicy::Spin:
            while (!try_acquire()) {
                hdls::metrics::rt().window_lock_retries->inc();
                std::this_thread::yield();
            }
            return;
        case LockPolicy::Backoff: {
            Backoff backoff;
            while (!try_acquire()) {
                hdls::metrics::rt().window_lock_retries->inc();
                backoff.pause();
            }
            return;
        }
    }
    block();  // unreachable; keeps the compiler's control-flow check happy
}
}  // namespace

LockPolicy lock_policy() noexcept {
    return g_lock_policy.load(std::memory_order_relaxed);
}

void set_lock_policy(LockPolicy policy) noexcept {
    g_lock_policy.store(policy, std::memory_order_relaxed);
}

Window Window::allocate_shared(const Comm& comm, std::size_t local_bytes) {
    if (!comm.valid()) {
        throw Error(ErrorCode::InvalidArgument, "minimpi: allocate_shared on invalid comm");
    }
    detail::RuntimeState* state = comm.state_;
    const int p = comm.size();

    // Everyone learns everyone's contribution and derives identical layout.
    const auto mine = static_cast<std::uint64_t>(local_bytes);
    std::vector<std::uint64_t> contributions(static_cast<std::size_t>(p));
    comm.allgather(std::span<const std::uint64_t>(&mine, 1),
                   std::span<std::uint64_t>(contributions));
    std::vector<std::size_t> offsets(static_cast<std::size_t>(p));
    std::vector<std::size_t> sizes(static_cast<std::size_t>(p));
    std::size_t total = 0;
    for (int r = 0; r < p; ++r) {
        offsets[static_cast<std::size_t>(r)] = total;
        sizes[static_cast<std::size_t>(r)] = contributions[static_cast<std::size_t>(r)];
        total += align_up(contributions[static_cast<std::size_t>(r)]);
    }

    // Rank 0 creates and registers the backing store, then broadcasts the
    // id; the bcast's happens-before edge guarantees peers find it.
    std::uint64_t win_id = 0;
    if (comm.rank() == 0) {
        win_id = state->next_window_id.fetch_add(1, std::memory_order_relaxed);
        auto impl = std::make_shared<detail::WindowImpl>(win_id, *comm.meta_, offsets, sizes,
                                                         std::max<std::size_t>(total, 1));
        const std::lock_guard<std::mutex> lock(state->window_mutex);
        state->windows.emplace(win_id, std::move(impl));
    }
    comm.bcast(win_id, 0);

    std::shared_ptr<detail::WindowImpl> impl;
    {
        const std::lock_guard<std::mutex> lock(state->window_mutex);
        const auto it = state->windows.find(win_id);
        if (it == state->windows.end()) {
            throw Error(ErrorCode::Internal, "minimpi: window id not registered");
        }
        impl = it->second;
    }
    return Window(std::move(impl), comm);
}

Window Window::allocate(const Comm& comm, std::size_t local_bytes) {
    return allocate_shared(comm, local_bytes);
}

void Window::require_valid() const {
    if (!valid()) {
        throw Error(ErrorCode::WindowUsage, "minimpi: operation on an invalid window");
    }
}

void Window::check_target(int target_rank) const {
    if (target_rank < 0 || target_rank >= size()) {
        throw Error(ErrorCode::InvalidRank, "minimpi: window target rank out of range");
    }
}

std::span<std::byte> Window::local_span() const {
    require_valid();
    return {impl_->segment(rank_), impl_->segment_size(rank_)};
}

std::pair<std::byte*, std::size_t> Window::shared_query(int target_rank) const {
    require_valid();
    check_target(target_rank);
    return {impl_->segment(target_rank), impl_->segment_size(target_rank)};
}

void Window::lock(LockType type, int target_rank) const {
    require_valid();
    check_target(target_rank);
    if (held_.contains(target_rank)) {
        throw Error(ErrorCode::WindowUsage,
                    "minimpi: nested lock on the same window target (epochs may not overlap)");
    }
    std::shared_mutex& mutex = impl_->lock_of(target_rank);
    if (type == LockType::Exclusive) {
        acquire_polled([&] { return mutex.try_lock(); }, [&] { mutex.lock(); });
    } else {
        acquire_polled([&] { return mutex.try_lock_shared(); }, [&] { mutex.lock_shared(); });
    }
    held_.emplace(target_rank, type);
}

void Window::unlock(int target_rank) const {
    require_valid();
    check_target(target_rank);
    const auto it = held_.find(target_rank);
    if (it == held_.end()) {
        throw Error(ErrorCode::WindowUsage, "minimpi: unlock without a matching lock");
    }
    if (it->second == LockType::Exclusive) {
        impl_->lock_of(target_rank).unlock();
    } else {
        impl_->lock_of(target_rank).unlock_shared();
    }
    held_.erase(it);
}

void Window::lock_all() const {
    require_valid();
    for (int r = 0; r < size(); ++r) {
        lock(LockType::Shared, r);
    }
}

void Window::unlock_all() const {
    require_valid();
    for (int r = 0; r < size(); ++r) {
        unlock(r);
    }
}

void Window::flush(int target_rank) const {
    require_valid();
    check_target(target_rank);
    std::atomic_thread_fence(std::memory_order_seq_cst);
}

void Window::flush_all() const {
    require_valid();
    std::atomic_thread_fence(std::memory_order_seq_cst);
}

void Window::sync() const {
    require_valid();
    std::atomic_thread_fence(std::memory_order_seq_cst);
}

void Window::free() {
    require_valid();
    if (!held_.empty()) {
        throw Error(ErrorCode::WindowUsage, "minimpi: freeing a window with open epochs");
    }
    const std::uint64_t id = impl_->id();
    detail::RuntimeState* state = comm_.state_;
    comm_.barrier();  // all ranks must be done with the window
    if (comm_.rank() == 0) {
        const std::lock_guard<std::mutex> lock(state->window_mutex);
        state->windows.erase(id);
    }
    impl_.reset();
    comm_ = Comm();
    rank_ = -1;
}

}  // namespace minimpi
