#include "minimpi/host_topology.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <string>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace minimpi {

std::string_view pin_policy_name(PinPolicy p) noexcept {
    switch (p) {
        case PinPolicy::None:
            return "none";
        case PinPolicy::Compact:
            return "compact";
        case PinPolicy::Scatter:
            return "scatter";
    }
    return "?";
}

std::optional<PinPolicy> pin_policy_from_string(std::string_view name) noexcept {
    if (name == "none") {
        return PinPolicy::None;
    }
    if (name == "compact") {
        return PinPolicy::Compact;
    }
    if (name == "scatter") {
        return PinPolicy::Scatter;
    }
    return std::nullopt;
}

HostTopology HostTopology::detect() {
    std::map<int, std::vector<int>> by_package;
#if defined(__linux__)
    const int ncpu = static_cast<int>(std::thread::hardware_concurrency());
    for (int cpu = 0; cpu < std::max(ncpu, 1); ++cpu) {
        std::ifstream f("/sys/devices/system/cpu/cpu" + std::to_string(cpu) +
                        "/topology/physical_package_id");
        int pkg = -1;
        if (!(f >> pkg)) {
            continue;
        }
        by_package[pkg].push_back(cpu);
    }
#endif
    HostTopology t;
    if (by_package.empty()) {
        // Non-Linux, or sysfs hidden by the container runtime: pretend one
        // socket spanning every CPU, so Compact == Scatter == core pinning.
        const int ncpu = std::max(static_cast<int>(std::thread::hardware_concurrency()), 1);
        HostSocket s;
        s.id = 0;
        s.cpus.resize(static_cast<std::size_t>(ncpu));
        for (int c = 0; c < ncpu; ++c) {
            s.cpus[static_cast<std::size_t>(c)] = c;
        }
        t.sockets_.push_back(std::move(s));
        return t;
    }
    for (auto& [pkg, cpus] : by_package) {
        std::sort(cpus.begin(), cpus.end());
        t.sockets_.push_back(HostSocket{pkg, std::move(cpus)});
    }
    return t;
}

HostTopology HostTopology::uniform(int sockets, int cpus_per_socket) {
    HostTopology t;
    int cpu = 0;
    for (int s = 0; s < sockets; ++s) {
        HostSocket sock;
        sock.id = s;
        for (int c = 0; c < cpus_per_socket; ++c) {
            sock.cpus.push_back(cpu++);
        }
        t.sockets_.push_back(std::move(sock));
    }
    return t;
}

int HostTopology::total_cpus() const noexcept {
    int n = 0;
    for (const auto& s : sockets_) {
        n += static_cast<int>(s.cpus.size());
    }
    return n;
}

std::vector<int> HostTopology::plan(PinPolicy policy, int first_worker, int count) const {
    std::vector<int> cpus(static_cast<std::size_t>(std::max(count, 0)), -1);
    const int total = total_cpus();
    if (policy == PinPolicy::None || total == 0 || sockets_.empty()) {
        return cpus;
    }
    if (policy == PinPolicy::Compact) {
        // Flatten socket-major: socket 0's CPUs, then socket 1's, ...
        std::vector<int> flat;
        flat.reserve(static_cast<std::size_t>(total));
        for (const auto& s : sockets_) {
            flat.insert(flat.end(), s.cpus.begin(), s.cpus.end());
        }
        for (int i = 0; i < count; ++i) {
            cpus[static_cast<std::size_t>(i)] =
                flat[static_cast<std::size_t>((first_worker + i) % total)];
        }
        return cpus;
    }
    // Scatter: worker g lands on socket g % S, slot (g / S) within it —
    // consecutive workers alternate sockets, maximizing per-worker memory
    // bandwidth at the price of cross-socket sharing.
    const auto nsock = static_cast<int>(sockets_.size());
    for (int i = 0; i < count; ++i) {
        const int g = first_worker + i;
        const HostSocket& s = sockets_[static_cast<std::size_t>(g % nsock)];
        const auto slot = static_cast<std::size_t>(g / nsock) % s.cpus.size();
        cpus[static_cast<std::size_t>(i)] = s.cpus[slot];
    }
    return cpus;
}

bool pin_current_thread(int cpu) noexcept {
    if (cpu < 0) {
        return true;
    }
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
    return false;
#endif
}

std::vector<int> current_thread_affinity() {
    std::vector<int> cpus;
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    if (pthread_getaffinity_np(pthread_self(), sizeof(set), &set) == 0) {
        for (int c = 0; c < CPU_SETSIZE; ++c) {
            if (CPU_ISSET(c, &set)) {
                cpus.push_back(c);
            }
        }
    }
#endif
    return cpus;
}

bool set_current_thread_affinity(const std::vector<int>& cpus) noexcept {
    if (cpus.empty()) {
        return true;
    }
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    for (const int c : cpus) {
        if (c >= 0 && c < CPU_SETSIZE) {
            CPU_SET(c, &set);
        }
    }
    return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
    return false;
#endif
}

}  // namespace minimpi
