#pragma once
/// \file topology.hpp
/// Simulated cluster topology: the assignment of minimpi ranks to compute
/// nodes. On a real cluster this mapping is physical; here it drives
/// Comm::split_type(SplitType::Shared) so the paper's node-local shared
/// work queues form exactly as they would under mpirun with N ranks/node.

#include <stdexcept>

namespace minimpi {

/// Block distribution of `world_size` ranks over nodes: ranks
/// [k*ranks_per_node, (k+1)*ranks_per_node) live on node k — the common
/// `mpirun --map-by node:PE=n` layout the paper uses (16 ranks per node).
struct Topology {
    int ranks_per_node = 1;

    [[nodiscard]] int node_of(int world_rank) const noexcept {
        return world_rank / ranks_per_node;
    }

    [[nodiscard]] int nodes_for(int world_size) const noexcept {
        return (world_size + ranks_per_node - 1) / ranks_per_node;
    }

    void validate() const {
        if (ranks_per_node < 1) {
            throw std::invalid_argument("Topology: ranks_per_node must be >= 1");
        }
    }
};

}  // namespace minimpi
