#pragma once
/// \file topology.hpp
/// Simulated machine topology: the assignment of minimpi ranks to the
/// levels of a machine tree (cluster -> rack -> node -> socket -> core).
///
/// Historically this was a flat block map (`ranks_per_node`); it is now a
/// full tree spec — an ordered list of levels with fan-outs whose product
/// is the world size, e.g. racks=2, nodes=4, sockets=2, cores=8 for a
/// 128-rank run. The flat form survives as the implied two-level
/// {nodes, cores} tree, so `Topology{16}` keeps meaning "16 ranks per
/// node". On a real cluster the mapping is physical; here it drives
/// Comm::split_type(SplitType::Shared) (the *leaf* groups — the innermost
/// shared-memory domains the paper's node-local queues form over) and the
/// recursive scheduling hierarchy of core::build_hierarchy.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace minimpi {

/// One level of the machine tree: every group at this level splits into
/// `fan_out` child groups (the last level's children are single ranks).
struct TopologyLevel {
    std::string name;  ///< e.g. "racks", "nodes", "sockets", "cores"
    int fan_out = 1;
};

/// Rank-to-tree assignment. Ranks are laid out in row-major tree order:
/// rank r belongs, at depth d, to group r / group_size(d+1)... formally
/// its coordinate at level d is (r / group_size(d+1)) % fan_out[d].
struct Topology {
    /// Size of a *leaf* group (the innermost shared-memory domain;
    /// historically "ranks per node"): ranks [k*rpn, (k+1)*rpn) share leaf
    /// group k. When `levels` is set this must equal the last level's
    /// fan-out (Topology::tree keeps the two in sync).
    int ranks_per_node = 1;

    /// Full machine tree, outermost level first. Empty means the classic
    /// two-level {nodes, cores} tree implied by ranks_per_node and the
    /// world size.
    std::vector<TopologyLevel> levels;

    /// Builds a tree topology; ranks_per_node follows the innermost level.
    [[nodiscard]] static Topology tree(std::vector<TopologyLevel> lv) {
        Topology t;
        if (!lv.empty()) {
            t.ranks_per_node = lv.back().fan_out;
        }
        t.levels = std::move(lv);
        return t;
    }

    /// Depth of the tree (2 for the implied flat form).
    [[nodiscard]] int depth() const noexcept {
        return levels.empty() ? 2 : static_cast<int>(levels.size());
    }

    /// Product of all fan-outs — the world size the tree describes.
    /// 0 when no explicit tree is set (the flat form fits any world size).
    [[nodiscard]] std::int64_t tree_ranks() const noexcept {
        if (levels.empty()) {
            return 0;
        }
        std::int64_t p = 1;
        for (const TopologyLevel& lv : levels) {
            p *= lv.fan_out;
        }
        return p;
    }

    /// Number of ranks inside one group at tree depth `d` (depth 0 = the
    /// whole world, depth() = a single rank). Requires an explicit tree.
    [[nodiscard]] std::int64_t group_size(int d) const {
        std::int64_t p = 1;
        for (std::size_t i = static_cast<std::size_t>(d); i < levels.size(); ++i) {
            p *= levels[i].fan_out;
        }
        return p;
    }

    /// Id of the depth-`d` group hosting `world_rank` (groups are numbered
    /// left to right across the whole tree). Requires an explicit tree.
    [[nodiscard]] int group_of(int world_rank, int d) const {
        return static_cast<int>(world_rank / group_size(d));
    }

    /// Coordinate of `world_rank` at level `d`: which of its depth-`d`
    /// group's fan_out children it falls into. Requires an explicit tree.
    [[nodiscard]] int coord_of(int world_rank, int d) const {
        return static_cast<int>((world_rank / group_size(d + 1)) %
                                levels[static_cast<std::size_t>(d)].fan_out);
    }

    /// Leaf (shared-memory) group of a rank — historically its "node".
    [[nodiscard]] int node_of(int world_rank) const noexcept {
        return world_rank / ranks_per_node;
    }

    /// Number of leaf groups in a world of `world_size` ranks.
    [[nodiscard]] int nodes_for(int world_size) const noexcept {
        return (world_size + ranks_per_node - 1) / ranks_per_node;
    }

    void validate() const {
        if (ranks_per_node < 1) {
            throw std::invalid_argument("Topology: ranks_per_node must be >= 1");
        }
        for (const TopologyLevel& lv : levels) {
            if (lv.name.empty()) {
                throw std::invalid_argument("Topology: level names must be non-empty");
            }
            if (lv.fan_out < 1) {
                throw std::invalid_argument("Topology: level '" + lv.name +
                                            "' fan-out must be >= 1 (got " +
                                            std::to_string(lv.fan_out) + ")");
            }
        }
        if (!levels.empty() && levels.back().fan_out != ranks_per_node) {
            throw std::invalid_argument(
                "Topology: innermost fan-out (" + std::to_string(levels.back().fan_out) +
                ") must equal ranks_per_node (" + std::to_string(ranks_per_node) + ")");
        }
    }

    /// Full validation against the actual world size: the tree's fan-outs
    /// must multiply to exactly `world_size`.
    void validate_world(int world_size) const {
        validate();
        const std::int64_t p = tree_ranks();
        if (p != 0 && p != world_size) {
            throw std::invalid_argument("Topology: level fan-outs multiply to " +
                                        std::to_string(p) + " but the world size is " +
                                        std::to_string(world_size));
        }
    }
};

}  // namespace minimpi
