/// \file mpi_compat.cpp
/// The MPI C-API shim: per-rank-thread handle tables over minimpi objects,
/// exception-to-error-code translation and datatype dispatch.

#include "minimpi/mpi_compat.hpp"

#include <cstring>
#include <map>
#include <optional>

#include "minimpi/minimpi.hpp"

namespace minimpi::compat {

namespace {

/// Per-rank-thread state: handle tables live in TLS, exactly like handles
/// in a real MPI process.
struct CompatState {
    std::map<MPI_Comm, Comm> comms;
    std::map<MPI_Win, std::pair<Window, int>> windows;  // window + disp_unit
    std::map<MPI_Request, Request> requests;
    MPI_Comm next_comm = MPI_COMM_WORLD + 1;
    MPI_Win next_win = 1;
    MPI_Request next_request = 1;
};

thread_local CompatState* tls_state = nullptr;

[[nodiscard]] std::size_t type_size(MPI_Datatype t) {
    switch (t) {
        case MPI_BYTE:
        case MPI_CHAR:
            return 1;
        case MPI_INT:
            return sizeof(int);
        case MPI_LONG:
            return sizeof(long);
        case MPI_LONG_LONG:
            return sizeof(long long);
        case MPI_INT64_T:
            return sizeof(std::int64_t);
        case MPI_UINT64_T:
            return sizeof(std::uint64_t);
        case MPI_FLOAT:
            return sizeof(float);
        case MPI_DOUBLE:
            return sizeof(double);
    }
    return 0;
}

[[nodiscard]] int error_code(const Error& e) noexcept {
    switch (e.code()) {
        case ErrorCode::InvalidRank:
            return MPI_ERR_RANK;
        case ErrorCode::InvalidTag:
            return MPI_ERR_TAG;
        case ErrorCode::InvalidArgument:
            return MPI_ERR_ARG;
        case ErrorCode::Truncate:
            return MPI_ERR_TRUNCATE;
        case ErrorCode::WindowUsage:
            return MPI_ERR_WIN;
        case ErrorCode::Resource:
            return MPI_ERR_NO_MEM;
        case ErrorCode::Aborted:
        case ErrorCode::Internal:
            return MPI_ERR_OTHER;
    }
    return MPI_ERR_OTHER;
}

/// Runs `body` translating minimpi exceptions into MPI error codes.
/// Aborted errors are rethrown so the whole team still unwinds cleanly.
template <typename Fn>
int guarded(Fn&& body) {
    if (tls_state == nullptr) {
        return MPI_ERR_OTHER;  // outside compat::run
    }
    try {
        return body();
    } catch (const Error& e) {
        if (e.code() == ErrorCode::Aborted) {
            throw;
        }
        return error_code(e);
    } catch (const std::exception&) {
        return MPI_ERR_OTHER;
    }
}

[[nodiscard]] Comm* find_comm(MPI_Comm handle) {
    const auto it = tls_state->comms.find(handle);
    return it != tls_state->comms.end() ? &it->second : nullptr;
}

[[nodiscard]] std::pair<Window, int>* find_win(MPI_Win handle) {
    const auto it = tls_state->windows.find(handle);
    return it != tls_state->windows.end() ? &it->second : nullptr;
}

void fill_status(MPI_Status* status, const Status& s) {
    if (status != MPI_STATUS_IGNORE) {
        status->MPI_SOURCE = s.source;
        status->MPI_TAG = s.tag;
        status->MPI_ERROR = MPI_SUCCESS;
        status->internal_bytes = s.bytes;
    }
}

[[nodiscard]] std::optional<ReduceOp> to_reduce_op(MPI_Op op) {
    switch (op) {
        case MPI_SUM:
            return ReduceOp::Sum;
        case MPI_PROD:
            return ReduceOp::Prod;
        case MPI_MIN:
            return ReduceOp::Min;
        case MPI_MAX:
            return ReduceOp::Max;
        default:
            return std::nullopt;
    }
}

[[nodiscard]] std::optional<AccumulateOp> to_accumulate_op(MPI_Op op) {
    switch (op) {
        case MPI_SUM:
            return AccumulateOp::Sum;
        case MPI_REPLACE:
            return AccumulateOp::Replace;
        case MPI_MIN:
            return AccumulateOp::Min;
        case MPI_MAX:
            return AccumulateOp::Max;
        case MPI_NO_OP:
            return AccumulateOp::NoOp;
        default:
            return std::nullopt;
    }
}

/// Invokes `fn.template operator()<T>()` for the arithmetic type behind
/// `datatype`; returns MPI_ERR_TYPE for non-arithmetic datatypes.
template <typename Fn>
int dispatch_arithmetic(MPI_Datatype datatype, Fn&& fn) {
    switch (datatype) {
        case MPI_INT:
            return fn.template operator()<int>();
        case MPI_LONG:
            return fn.template operator()<long>();
        case MPI_LONG_LONG:
            return fn.template operator()<long long>();
        case MPI_INT64_T:
            return fn.template operator()<std::int64_t>();
        case MPI_UINT64_T:
            return fn.template operator()<std::uint64_t>();
        case MPI_FLOAT:
            return fn.template operator()<float>();
        case MPI_DOUBLE:
            return fn.template operator()<double>();
        case MPI_BYTE:
        case MPI_CHAR:
            return MPI_ERR_TYPE;
    }
    return MPI_ERR_TYPE;
}

}  // namespace

// -------------------------------------------------------------- lifetime --

void run(int world_size, const Topology& topology, const std::function<void()>& fn) {
    Runtime::run(world_size, topology, [&](Context& ctx) {
        CompatState state;
        state.comms.emplace(MPI_COMM_WORLD, ctx.world());
        tls_state = &state;
        try {
            fn();
        } catch (...) {
            tls_state = nullptr;
            throw;
        }
        tls_state = nullptr;
    });
}

void run(int world_size, const std::function<void()>& fn) {
    Topology topo;
    topo.ranks_per_node = world_size;
    run(world_size, topo, fn);
}

int MPI_Initialized(int* flag) {
    if (flag == nullptr) {
        return MPI_ERR_ARG;
    }
    *flag = tls_state != nullptr ? 1 : 0;
    return MPI_SUCCESS;
}

// ------------------------------------------------------------------- p2p --

int MPI_Comm_rank(MPI_Comm comm, int* rank) {
    return guarded([&] {
        const Comm* c = find_comm(comm);
        if (c == nullptr || rank == nullptr) {
            return MPI_ERR_COMM;
        }
        *rank = c->rank();
        return MPI_SUCCESS;
    });
}

int MPI_Comm_size(MPI_Comm comm, int* size) {
    return guarded([&] {
        const Comm* c = find_comm(comm);
        if (c == nullptr || size == nullptr) {
            return MPI_ERR_COMM;
        }
        *size = c->size();
        return MPI_SUCCESS;
    });
}

int MPI_Send(const void* buf, int count, MPI_Datatype datatype, int dest, int tag,
             MPI_Comm comm) {
    return guarded([&] {
        const Comm* c = find_comm(comm);
        if (c == nullptr) {
            return MPI_ERR_COMM;
        }
        const std::size_t ts = type_size(datatype);
        if (ts == 0 || count < 0) {
            return MPI_ERR_TYPE;
        }
        c->send_bytes(buf, ts * static_cast<std::size_t>(count), dest, tag);
        return MPI_SUCCESS;
    });
}

int MPI_Recv(void* buf, int count, MPI_Datatype datatype, int source, int tag, MPI_Comm comm,
             MPI_Status* status) {
    return guarded([&] {
        const Comm* c = find_comm(comm);
        if (c == nullptr) {
            return MPI_ERR_COMM;
        }
        const std::size_t ts = type_size(datatype);
        if (ts == 0 || count < 0) {
            return MPI_ERR_TYPE;
        }
        const Status s = c->recv_bytes(buf, ts * static_cast<std::size_t>(count), source, tag);
        fill_status(status, s);
        return MPI_SUCCESS;
    });
}

int MPI_Isend(const void* buf, int count, MPI_Datatype datatype, int dest, int tag,
              MPI_Comm comm, MPI_Request* request) {
    return guarded([&] {
        const Comm* c = find_comm(comm);
        if (c == nullptr || request == nullptr) {
            return MPI_ERR_COMM;
        }
        const std::size_t ts = type_size(datatype);
        if (ts == 0 || count < 0) {
            return MPI_ERR_TYPE;
        }
        // Eager semantics: Comm::isend sends and completes immediately.
        Request r = c->isend(
            std::span<const std::byte>(static_cast<const std::byte*>(buf),
                                       ts * static_cast<std::size_t>(count)),
            dest, tag);
        const MPI_Request handle = tls_state->next_request++;
        tls_state->requests.emplace(handle, std::move(r));
        *request = handle;
        return MPI_SUCCESS;
    });
}

int MPI_Irecv(void* buf, int count, MPI_Datatype datatype, int source, int tag, MPI_Comm comm,
              MPI_Request* request) {
    return guarded([&] {
        const Comm* c = find_comm(comm);
        if (c == nullptr || request == nullptr) {
            return MPI_ERR_COMM;
        }
        const std::size_t ts = type_size(datatype);
        if (ts == 0 || count < 0) {
            return MPI_ERR_TYPE;
        }
        Request r = c->irecv_bytes(buf, ts * static_cast<std::size_t>(count), source, tag);
        const MPI_Request handle = tls_state->next_request++;
        tls_state->requests.emplace(handle, std::move(r));
        *request = handle;
        return MPI_SUCCESS;
    });
}

int MPI_Wait(MPI_Request* request, MPI_Status* status) {
    return guarded([&] {
        if (request == nullptr) {
            return MPI_ERR_ARG;
        }
        if (*request == MPI_REQUEST_NULL) {
            return MPI_SUCCESS;
        }
        const auto it = tls_state->requests.find(*request);
        if (it == tls_state->requests.end()) {
            return MPI_ERR_ARG;
        }
        it->second.wait();
        fill_status(status, it->second.status());
        tls_state->requests.erase(it);
        *request = MPI_REQUEST_NULL;
        return MPI_SUCCESS;
    });
}

int MPI_Test(MPI_Request* request, int* flag, MPI_Status* status) {
    return guarded([&] {
        if (request == nullptr || flag == nullptr) {
            return MPI_ERR_ARG;
        }
        if (*request == MPI_REQUEST_NULL) {
            *flag = 1;
            return MPI_SUCCESS;
        }
        const auto it = tls_state->requests.find(*request);
        if (it == tls_state->requests.end()) {
            return MPI_ERR_ARG;
        }
        if (it->second.test()) {
            *flag = 1;
            fill_status(status, it->second.status());
            tls_state->requests.erase(it);
            *request = MPI_REQUEST_NULL;
        } else {
            *flag = 0;
        }
        return MPI_SUCCESS;
    });
}

int MPI_Waitall(int count, MPI_Request* requests, MPI_Status* statuses) {
    if (count < 0 || (count > 0 && requests == nullptr)) {
        return MPI_ERR_ARG;
    }
    for (int i = 0; i < count; ++i) {
        MPI_Status* status = statuses == MPI_STATUSES_IGNORE ? MPI_STATUS_IGNORE : &statuses[i];
        const int rc = MPI_Wait(&requests[i], status);
        if (rc != MPI_SUCCESS) {
            return rc;
        }
    }
    return MPI_SUCCESS;
}

int MPI_Probe(int source, int tag, MPI_Comm comm, MPI_Status* status) {
    return guarded([&] {
        const Comm* c = find_comm(comm);
        if (c == nullptr) {
            return MPI_ERR_COMM;
        }
        fill_status(status, c->probe(source, tag));
        return MPI_SUCCESS;
    });
}

int MPI_Iprobe(int source, int tag, MPI_Comm comm, int* flag, MPI_Status* status) {
    return guarded([&] {
        const Comm* c = find_comm(comm);
        if (c == nullptr || flag == nullptr) {
            return MPI_ERR_COMM;
        }
        const auto s = c->iprobe(source, tag);
        *flag = s.has_value() ? 1 : 0;
        if (s) {
            fill_status(status, *s);
        }
        return MPI_SUCCESS;
    });
}

int MPI_Get_count(const MPI_Status* status, MPI_Datatype datatype, int* count) {
    if (status == nullptr || count == nullptr) {
        return MPI_ERR_ARG;
    }
    const std::size_t ts = type_size(datatype);
    if (ts == 0) {
        return MPI_ERR_TYPE;
    }
    *count = static_cast<int>(status->internal_bytes / ts);
    return MPI_SUCCESS;
}

int MPI_Sendrecv(const void* sendbuf, int sendcount, MPI_Datatype sendtype, int dest,
                 int sendtag, void* recvbuf, int recvcount, MPI_Datatype recvtype, int source,
                 int recvtag, MPI_Comm comm, MPI_Status* status) {
    // Eager sends cannot deadlock, so send-then-receive is safe.
    const int rc = MPI_Send(sendbuf, sendcount, sendtype, dest, sendtag, comm);
    if (rc != MPI_SUCCESS) {
        return rc;
    }
    return MPI_Recv(recvbuf, recvcount, recvtype, source, recvtag, comm, status);
}

// ----------------------------------------------------------- collectives --

int MPI_Barrier(MPI_Comm comm) {
    return guarded([&] {
        const Comm* c = find_comm(comm);
        if (c == nullptr) {
            return MPI_ERR_COMM;
        }
        c->barrier();
        return MPI_SUCCESS;
    });
}

int MPI_Bcast(void* buffer, int count, MPI_Datatype datatype, int root, MPI_Comm comm) {
    return guarded([&] {
        const Comm* c = find_comm(comm);
        if (c == nullptr) {
            return MPI_ERR_COMM;
        }
        const std::size_t ts = type_size(datatype);
        if (ts == 0 || count < 0) {
            return MPI_ERR_TYPE;
        }
        auto* bytes = static_cast<std::byte*>(buffer);
        c->bcast(std::span<std::byte>(bytes, ts * static_cast<std::size_t>(count)), root);
        return MPI_SUCCESS;
    });
}

int MPI_Reduce(const void* sendbuf, void* recvbuf, int count, MPI_Datatype datatype, MPI_Op op,
               int root, MPI_Comm comm) {
    return guarded([&] {
        const Comm* c = find_comm(comm);
        if (c == nullptr) {
            return MPI_ERR_COMM;
        }
        const auto rop = to_reduce_op(op);
        if (!rop || count < 0) {
            return MPI_ERR_OP;
        }
        return dispatch_arithmetic(datatype, [&]<typename T>() {
            c->reduce(std::span<const T>(static_cast<const T*>(sendbuf),
                                         static_cast<std::size_t>(count)),
                      std::span<T>(static_cast<T*>(recvbuf), static_cast<std::size_t>(count)),
                      *rop, root);
            return MPI_SUCCESS;
        });
    });
}

int MPI_Allreduce(const void* sendbuf, void* recvbuf, int count, MPI_Datatype datatype,
                  MPI_Op op, MPI_Comm comm) {
    return guarded([&] {
        const Comm* c = find_comm(comm);
        if (c == nullptr) {
            return MPI_ERR_COMM;
        }
        const auto rop = to_reduce_op(op);
        if (!rop || count < 0) {
            return MPI_ERR_OP;
        }
        return dispatch_arithmetic(datatype, [&]<typename T>() {
            c->allreduce(std::span<const T>(static_cast<const T*>(sendbuf),
                                            static_cast<std::size_t>(count)),
                         std::span<T>(static_cast<T*>(recvbuf),
                                      static_cast<std::size_t>(count)),
                         *rop);
            return MPI_SUCCESS;
        });
    });
}

int MPI_Gather(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
               int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm) {
    return guarded([&] {
        const Comm* c = find_comm(comm);
        if (c == nullptr) {
            return MPI_ERR_COMM;
        }
        const std::size_t sts = type_size(sendtype);
        const std::size_t rts = type_size(recvtype);
        if (sts == 0 || rts == 0 || sendcount < 0 || recvcount < 0 ||
            sts * static_cast<std::size_t>(sendcount) !=
                rts * static_cast<std::size_t>(recvcount)) {
            return MPI_ERR_TYPE;
        }
        const std::size_t bytes = sts * static_cast<std::size_t>(sendcount);
        std::span<std::byte> out;
        if (c->rank() == root) {
            out = std::span<std::byte>(static_cast<std::byte*>(recvbuf),
                                       bytes * static_cast<std::size_t>(c->size()));
        }
        c->gather(std::span<const std::byte>(static_cast<const std::byte*>(sendbuf), bytes),
                  out, root);
        return MPI_SUCCESS;
    });
}

int MPI_Allgather(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                  int recvcount, MPI_Datatype recvtype, MPI_Comm comm) {
    return guarded([&] {
        const Comm* c = find_comm(comm);
        if (c == nullptr) {
            return MPI_ERR_COMM;
        }
        const std::size_t sts = type_size(sendtype);
        const std::size_t rts = type_size(recvtype);
        if (sts == 0 || rts == 0 || sendcount < 0 || recvcount < 0 ||
            sts * static_cast<std::size_t>(sendcount) !=
                rts * static_cast<std::size_t>(recvcount)) {
            return MPI_ERR_TYPE;
        }
        const std::size_t bytes = sts * static_cast<std::size_t>(sendcount);
        c->allgather(
            std::span<const std::byte>(static_cast<const std::byte*>(sendbuf), bytes),
            std::span<std::byte>(static_cast<std::byte*>(recvbuf),
                                 bytes * static_cast<std::size_t>(c->size())));
        return MPI_SUCCESS;
    });
}

int MPI_Scatter(const void* sendbuf, int sendcount, MPI_Datatype sendtype, void* recvbuf,
                int recvcount, MPI_Datatype recvtype, int root, MPI_Comm comm) {
    return guarded([&] {
        const Comm* c = find_comm(comm);
        if (c == nullptr) {
            return MPI_ERR_COMM;
        }
        const std::size_t sts = type_size(sendtype);
        const std::size_t rts = type_size(recvtype);
        if (sts == 0 || rts == 0 || sendcount < 0 || recvcount < 0 ||
            sts * static_cast<std::size_t>(sendcount) !=
                rts * static_cast<std::size_t>(recvcount)) {
            return MPI_ERR_TYPE;
        }
        const std::size_t bytes = rts * static_cast<std::size_t>(recvcount);
        std::span<const std::byte> in;
        if (c->rank() == root) {
            in = std::span<const std::byte>(static_cast<const std::byte*>(sendbuf),
                                            bytes * static_cast<std::size_t>(c->size()));
        }
        c->scatter(in, std::span<std::byte>(static_cast<std::byte*>(recvbuf), bytes), root);
        return MPI_SUCCESS;
    });
}

// -------------------------------------------------------- comm management --

namespace {
int register_comm(Comm&& comm, MPI_Comm* newcomm) {
    if (!comm.valid()) {
        *newcomm = MPI_COMM_NULL;
        return MPI_SUCCESS;
    }
    const MPI_Comm handle = tls_state->next_comm++;
    tls_state->comms.emplace(handle, std::move(comm));
    *newcomm = handle;
    return MPI_SUCCESS;
}
}  // namespace

int MPI_Comm_dup(MPI_Comm comm, MPI_Comm* newcomm) {
    return guarded([&] {
        const Comm* c = find_comm(comm);
        if (c == nullptr || newcomm == nullptr) {
            return MPI_ERR_COMM;
        }
        return register_comm(c->dup(), newcomm);
    });
}

int MPI_Comm_split(MPI_Comm comm, int color, int key, MPI_Comm* newcomm) {
    return guarded([&] {
        const Comm* c = find_comm(comm);
        if (c == nullptr || newcomm == nullptr) {
            return MPI_ERR_COMM;
        }
        return register_comm(c->split(color == MPI_UNDEFINED ? -1 : color, key), newcomm);
    });
}

int MPI_Comm_split_type(MPI_Comm comm, int split_type, int key, MPI_Info /*info*/,
                        MPI_Comm* newcomm) {
    return guarded([&] {
        const Comm* c = find_comm(comm);
        if (c == nullptr || newcomm == nullptr) {
            return MPI_ERR_COMM;
        }
        if (split_type != MPI_COMM_TYPE_SHARED) {
            return MPI_ERR_ARG;
        }
        return register_comm(c->split_type(SplitType::Shared, key), newcomm);
    });
}

int MPI_Comm_free(MPI_Comm* comm) {
    return guarded([&] {
        if (comm == nullptr || *comm == MPI_COMM_WORLD) {
            return MPI_ERR_COMM;
        }
        tls_state->comms.erase(*comm);
        *comm = MPI_COMM_NULL;
        return MPI_SUCCESS;
    });
}

// ------------------------------------------------------------------- RMA --

int MPI_Win_allocate_shared(MPI_Aint size, int disp_unit, MPI_Info /*info*/, MPI_Comm comm,
                            void* baseptr, MPI_Win* win) {
    return guarded([&] {
        const Comm* c = find_comm(comm);
        if (c == nullptr || win == nullptr || baseptr == nullptr) {
            return MPI_ERR_COMM;
        }
        if (size < 0 || disp_unit <= 0) {
            return MPI_ERR_ARG;
        }
        Window w = Window::allocate_shared(*c, static_cast<std::size_t>(size));
        *static_cast<void**>(baseptr) = w.local_span().data();
        const MPI_Win handle = tls_state->next_win++;
        tls_state->windows.emplace(handle, std::pair{std::move(w), disp_unit});
        *win = handle;
        return MPI_SUCCESS;
    });
}

int MPI_Win_shared_query(MPI_Win win, int rank, MPI_Aint* size, int* disp_unit, void* baseptr) {
    return guarded([&] {
        auto* entry = find_win(win);
        if (entry == nullptr) {
            return MPI_ERR_WIN;
        }
        const auto [ptr, bytes] = entry->first.shared_query(rank);
        if (size != nullptr) {
            *size = static_cast<MPI_Aint>(bytes);
        }
        if (disp_unit != nullptr) {
            *disp_unit = entry->second;
        }
        if (baseptr != nullptr) {
            *static_cast<void**>(baseptr) = ptr;
        }
        return MPI_SUCCESS;
    });
}

int MPI_Win_lock(int lock_type, int rank, int /*assert_arg*/, MPI_Win win) {
    return guarded([&] {
        auto* entry = find_win(win);
        if (entry == nullptr) {
            return MPI_ERR_WIN;
        }
        if (lock_type != MPI_LOCK_EXCLUSIVE && lock_type != MPI_LOCK_SHARED) {
            return MPI_ERR_ARG;
        }
        entry->first.lock(
            lock_type == MPI_LOCK_EXCLUSIVE ? LockType::Exclusive : LockType::Shared, rank);
        return MPI_SUCCESS;
    });
}

int MPI_Win_unlock(int rank, MPI_Win win) {
    return guarded([&] {
        auto* entry = find_win(win);
        if (entry == nullptr) {
            return MPI_ERR_WIN;
        }
        entry->first.unlock(rank);
        return MPI_SUCCESS;
    });
}

int MPI_Win_lock_all(int /*assert_arg*/, MPI_Win win) {
    return guarded([&] {
        auto* entry = find_win(win);
        if (entry == nullptr) {
            return MPI_ERR_WIN;
        }
        entry->first.lock_all();
        return MPI_SUCCESS;
    });
}

int MPI_Win_unlock_all(MPI_Win win) {
    return guarded([&] {
        auto* entry = find_win(win);
        if (entry == nullptr) {
            return MPI_ERR_WIN;
        }
        entry->first.unlock_all();
        return MPI_SUCCESS;
    });
}

int MPI_Fetch_and_op(const void* origin_addr, void* result_addr, MPI_Datatype datatype,
                     int target_rank, MPI_Aint target_disp, MPI_Op op, MPI_Win win) {
    return guarded([&] {
        auto* entry = find_win(win);
        if (entry == nullptr) {
            return MPI_ERR_WIN;
        }
        const auto aop = to_accumulate_op(op);
        if (!aop) {
            return MPI_ERR_OP;
        }
        return dispatch_arithmetic(datatype, [&]<typename T>() {
            const T operand =
                origin_addr != nullptr ? *static_cast<const T*>(origin_addr) : T{};
            const T previous = entry->first.fetch_and_op<T>(
                operand, target_rank, static_cast<std::size_t>(target_disp), *aop);
            if (result_addr != nullptr) {
                *static_cast<T*>(result_addr) = previous;
            }
            return MPI_SUCCESS;
        });
    });
}

int MPI_Compare_and_swap(const void* origin_addr, const void* compare_addr, void* result_addr,
                         MPI_Datatype datatype, int target_rank, MPI_Aint target_disp,
                         MPI_Win win) {
    return guarded([&] {
        auto* entry = find_win(win);
        if (entry == nullptr) {
            return MPI_ERR_WIN;
        }
        if (origin_addr == nullptr || compare_addr == nullptr) {
            return MPI_ERR_ARG;
        }
        switch (datatype) {
            case MPI_INT: {
                const int prev = entry->first.compare_and_swap<int>(
                    *static_cast<const int*>(compare_addr),
                    *static_cast<const int*>(origin_addr), target_rank,
                    static_cast<std::size_t>(target_disp));
                if (result_addr != nullptr) {
                    *static_cast<int*>(result_addr) = prev;
                }
                return MPI_SUCCESS;
            }
            case MPI_LONG_LONG:
            case MPI_INT64_T: {
                const auto prev = entry->first.compare_and_swap<std::int64_t>(
                    *static_cast<const std::int64_t*>(compare_addr),
                    *static_cast<const std::int64_t*>(origin_addr), target_rank,
                    static_cast<std::size_t>(target_disp));
                if (result_addr != nullptr) {
                    *static_cast<std::int64_t*>(result_addr) = prev;
                }
                return MPI_SUCCESS;
            }
            default:
                return MPI_ERR_TYPE;
        }
    });
}

int MPI_Win_flush(int rank, MPI_Win win) {
    return guarded([&] {
        auto* entry = find_win(win);
        if (entry == nullptr) {
            return MPI_ERR_WIN;
        }
        entry->first.flush(rank);
        return MPI_SUCCESS;
    });
}

int MPI_Win_flush_all(MPI_Win win) {
    return guarded([&] {
        auto* entry = find_win(win);
        if (entry == nullptr) {
            return MPI_ERR_WIN;
        }
        entry->first.flush_all();
        return MPI_SUCCESS;
    });
}

int MPI_Win_sync(MPI_Win win) {
    return guarded([&] {
        auto* entry = find_win(win);
        if (entry == nullptr) {
            return MPI_ERR_WIN;
        }
        entry->first.sync();
        return MPI_SUCCESS;
    });
}

int MPI_Win_free(MPI_Win* win) {
    return guarded([&] {
        if (win == nullptr) {
            return MPI_ERR_WIN;
        }
        auto* entry = find_win(*win);
        if (entry == nullptr) {
            return MPI_ERR_WIN;
        }
        entry->first.free();
        tls_state->windows.erase(*win);
        *win = MPI_WIN_NULL;
        return MPI_SUCCESS;
    });
}

}  // namespace minimpi::compat
