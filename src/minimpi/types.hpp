#pragma once
/// \file types.hpp
/// Common types, constants and errors of the minimpi runtime.
///
/// minimpi is a *thread-backed* implementation of the MPI-3 subset the
/// paper's MPI+MPI approach relies on: two-sided point-to-point messaging,
/// collectives, communicator splitting (including the shared-memory split
/// of MPI_Comm_split_type) and passive-target one-sided windows including
/// MPI_Win_allocate_shared, MPI_Fetch_and_op and MPI_Compare_and_swap.
/// Ranks are threads inside one process; a Topology assigns ranks to
/// simulated "compute nodes" so that node-level splitting behaves exactly
/// like MPI_COMM_TYPE_SHARED on a real cluster.
///
/// The public API mirrors MPI *semantics* (matching rules, eager buffered
/// sends, exclusive/shared passive-target locks, element-wise atomicity of
/// accumulate operations) with idiomatic C++ surface (RAII, spans, enums,
/// exceptions instead of error codes).

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace minimpi {

/// Wildcard for Comm::recv / probe source matching (MPI_ANY_SOURCE).
inline constexpr int kAnySource = -1;
/// Wildcard for Comm::recv / probe tag matching (MPI_ANY_TAG).
inline constexpr int kAnyTag = -1;

/// Error categories (loosely mirrors the MPI error classes we can hit).
enum class ErrorCode {
    InvalidRank,
    InvalidTag,
    InvalidArgument,
    Truncate,       ///< receive buffer smaller than the matched message
    WindowUsage,    ///< bad window rank/offset/alignment
    Aborted,        ///< another rank terminated with an exception
    Resource,       ///< transport resource exhausted (shm segment, slot capacity)
    Internal,
};

/// Exception thrown by all minimpi operations on failure.
class Error : public std::runtime_error {
public:
    Error(ErrorCode code, const std::string& what) : std::runtime_error(what), code_(code) {}
    [[nodiscard]] ErrorCode code() const noexcept { return code_; }

private:
    ErrorCode code_;
};

/// Completion information of a receive (subset of MPI_Status).
struct Status {
    int source = kAnySource;  ///< comm rank of the sender
    int tag = kAnyTag;
    std::size_t bytes = 0;  ///< payload size in bytes

    /// Element count, MPI_Get_count style.
    template <typename T>
    [[nodiscard]] std::size_t count() const noexcept {
        return bytes / sizeof(T);
    }
};

/// Comm::split_type selector (subset of MPI_COMM_TYPE_*).
enum class SplitType {
    Shared,  ///< ranks that share a simulated compute node (MPI_COMM_TYPE_SHARED)
};

/// Passive-target lock type (MPI_LOCK_EXCLUSIVE / MPI_LOCK_SHARED).
enum class LockType { Exclusive, Shared };

/// Element-wise atomic op for Window::fetch_and_op (subset of MPI_Op).
enum class AccumulateOp {
    Sum,      ///< MPI_SUM
    Replace,  ///< MPI_REPLACE
    Min,      ///< MPI_MIN
    Max,      ///< MPI_MAX
    NoOp,     ///< MPI_NO_OP — atomic read
};

/// Reduction operators for the collective reduce/allreduce.
enum class ReduceOp { Sum, Prod, Min, Max };

/// Only trivially copyable types travel through messages and windows.
template <typename T>
concept Pod = std::is_trivially_copyable_v<T>;

}  // namespace minimpi
