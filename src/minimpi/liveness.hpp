#pragma once
/// \file liveness.hpp
/// Heartbeat-based failure detection over the transport's per-rank
/// liveness words (Transport::beat / heartbeat / mark_dead).
///
/// Every rank bumps its own heartbeat counter at chunk boundaries (the
/// executors call Comm::beat once per executed chunk and once per wait-loop
/// round). A FailureDetector caches, per peer, the last counter value it
/// observed and when it first observed it; a peer whose counter has not
/// moved for longer than `timeout` is declared dead via Comm::mark_dead —
/// sticky, transport-wide, so every rank's detector and the lease layer
/// (core::LeaseBoard) agree on membership without extra consensus rounds.
///
/// The detector is deliberately *suspicion-based*: a slow-but-alive rank
/// that stops beating long enough WILL be declared dead. Safety does not
/// rest here — the lease layer's completion fence guarantees exactly-once
/// commitment even when a falsely-suspected owner finishes late (see
/// docs/fault-tolerance.md).

#include <chrono>
#include <cstdint>
#include <vector>

#include "minimpi/comm.hpp"

namespace minimpi {

class FailureDetector {
public:
    /// `timeout`: how long a peer's heartbeat word may stay unchanged
    /// before the peer is declared dead. Must comfortably exceed the
    /// longest chunk body plus scheduling gaps (HDLS_HEARTBEAT_TIMEOUT_MS;
    /// the lease deadline — k x the chunk-time EMA — bounds the damage of
    /// a too-tight choice to a fenced double *attempt*, never a double
    /// commit).
    FailureDetector(Comm comm, std::chrono::nanoseconds timeout)
        : comm_(std::move(comm)),
          timeout_(timeout),
          seen_(static_cast<std::size_t>(comm_.size())) {}

    /// One detection round: re-reads every peer's heartbeat word and marks
    /// peers stale past the timeout dead. Returns the number of peers
    /// *newly* declared dead by this call. O(ranks) relaxed atomic reads —
    /// cheap enough for every steal/drain round.
    int poll() {
        const auto now = std::chrono::steady_clock::now();
        int newly_dead = 0;
        for (int r = 0; r < comm_.size(); ++r) {
            if (r == comm_.rank() || comm_.is_dead(r)) {
                continue;
            }
            Seen& s = seen_[static_cast<std::size_t>(r)];
            const std::uint64_t beats = comm_.heartbeat_of(r);
            if (!s.valid || beats != s.value) {
                s.value = beats;
                s.first = now;
                s.valid = true;
                continue;
            }
            if (now - s.first > timeout_) {
                comm_.mark_dead(r);
                ++newly_dead;
            }
        }
        return newly_dead;
    }

    [[nodiscard]] bool is_dead(int rank) const { return comm_.is_dead(rank); }
    [[nodiscard]] int alive() const { return comm_.alive(); }
    [[nodiscard]] std::chrono::nanoseconds timeout() const noexcept { return timeout_; }

private:
    struct Seen {
        std::uint64_t value = 0;
        std::chrono::steady_clock::time_point first{};
        bool valid = false;
    };

    Comm comm_;
    std::chrono::nanoseconds timeout_;
    std::vector<Seen> seen_;
};

}  // namespace minimpi
