/// \file transport_shm.cpp
/// The POSIX shared-memory transport: segment lifecycle, lock-word
/// mailboxes and window lock words. See transport_shm.hpp for the layout.

#include "minimpi/transport_shm.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <new>
#include <string>

#include "minimpi/backoff.hpp"
#include "minimpi/lock_word.hpp"

namespace minimpi::detail {

namespace {

constexpr std::size_t kShmAlign = 64;

[[nodiscard]] constexpr std::size_t align_up64(std::size_t v) noexcept {
    return (v + kShmAlign - 1) / kShmAlign * kShmAlign;
}

/// Exclusive spin lock over a lock word in the segment (Backoff ladder, so
/// contended mailboxes degrade exactly like contended window epochs).
class SpinLockGuard {
public:
    explicit SpinLockGuard(std::atomic<std::uint32_t>& word) : word_(word) {
        Backoff backoff;
        while (word_.exchange(1, std::memory_order_acquire) != 0) {
            backoff.pause();
        }
    }
    ~SpinLockGuard() { word_.store(0, std::memory_order_release); }
    SpinLockGuard(const SpinLockGuard&) = delete;
    SpinLockGuard& operator=(const SpinLockGuard&) = delete;

private:
    std::atomic<std::uint32_t>& word_;
};

[[noreturn]] void throw_aborted() {
    throw Error(ErrorCode::Aborted, "minimpi: runtime aborting (peer rank failed)");
}

}  // namespace

// ----------------------------------------------------------- shared layout --

/// Segment header. `arena_next` is the bump pointer of the window arena,
/// as an absolute byte offset into the segment; `abort_word` mirrors the
/// runtime abort flag inside the segment so a peer *process* mapping it
/// would observe the failure too.
struct ShmControl {
    std::atomic<std::uint32_t> abort_word{0};
    std::atomic<std::uint64_t> arena_next{0};
    std::uint64_t arena_end = 0;
};

/// One rank's liveness line (see Transport::beat): heartbeat counter +
/// sticky dead flag, one cache line per rank so peers polling different
/// ranks never contend.
struct alignas(64) ShmLiveLine {
    std::atomic<std::uint64_t> beats{0};
    std::atomic<std::uint32_t> dead{0};
};

namespace {
[[nodiscard]] ShmLiveLine& live_line(std::byte* base, int rank) noexcept {
    return *reinterpret_cast<ShmLiveLine*>(base +
                                           static_cast<std::size_t>(rank) * sizeof(ShmLiveLine));
}
}  // namespace

/// One message slot. Head slots are linked into either the mailbox's
/// order list (head/tail, via `next`) or the free list; a payload larger
/// than one slot continues into chained continuation slots (via `cont`),
/// which never appear in the order list themselves.
struct ShmSlot {
    std::uint64_t comm_id;
    std::uint64_t cseq;
    std::int32_t src;
    std::int32_t tag;
    std::uint32_t collective;
    std::uint32_t size;  ///< total payload bytes of the whole chain
    std::int32_t next;
    std::int32_t cont;
    alignas(8) std::byte payload[kShmMaxPayload];
};

/// Per-rank mailbox region. Slot pages are touched lazily: `fresh` hands
/// out never-used slots, recycled ones come off the free list — a run
/// that never queues more than k messages at once touches only k slots.
struct ShmMailboxShared {
    std::atomic<std::uint32_t> lock{0};
    std::uint32_t count = 0;
    std::int32_t head = -1;
    std::int32_t tail = -1;
    std::int32_t free_head = -1;
    std::int32_t fresh = 0;
    ShmSlot slots[kShmMailboxSlots];
};

namespace {

[[nodiscard]] std::int32_t alloc_slot(ShmMailboxShared& sh) noexcept {
    if (sh.free_head >= 0) {
        const std::int32_t idx = sh.free_head;
        sh.free_head = sh.slots[idx].next;
        return idx;
    }
    if (sh.fresh < static_cast<std::int32_t>(kShmMailboxSlots)) {
        return sh.fresh++;
    }
    return -1;
}

[[nodiscard]] bool matches_slot(const MatchSpec& spec, const ShmSlot& s) noexcept {
    if (s.comm_id != spec.comm_id || (s.collective != 0) != spec.collective) {
        return false;
    }
    if (spec.collective && s.cseq != spec.cseq) {
        return false;
    }
    if (spec.src != kAnySource && s.src != spec.src) {
        return false;
    }
    if (spec.tag != kAnyTag && s.tag != spec.tag) {
        return false;
    }
    return true;
}

}  // namespace

// ------------------------------------------------------------- ShmSegment --

ShmSegment::ShmSegment(std::size_t bytes) : size_(bytes) {
    static std::atomic<std::uint64_t> counter{0};
    for (;;) {
        const std::string name = "/hdls-" + std::to_string(::getpid()) + "-" +
                                 std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
        const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
        if (fd < 0) {
            if (errno == EEXIST) {
                continue;  // stale name from a crashed sibling; take the next
            }
            throw Error(ErrorCode::Resource,
                        std::string("minimpi: shm_open failed: ") + std::strerror(errno));
        }
        if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
            const int err = errno;
            ::close(fd);
            ::shm_unlink(name.c_str());
            throw Error(ErrorCode::Resource,
                        std::string("minimpi: ftruncate of the shm segment failed: ") +
                            std::strerror(err));
        }
        void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
        const int err = errno;
        // Unlink immediately: the mapping keeps the segment alive, nothing
        // is left in /dev/shm even if this process dies uncleanly.
        ::shm_unlink(name.c_str());
        ::close(fd);
        if (p == MAP_FAILED) {
            throw Error(ErrorCode::Resource,
                        std::string("minimpi: mmap of the shm segment failed: ") +
                            std::strerror(err));
        }
        data_ = static_cast<std::byte*>(p);
        return;
    }
}

ShmSegment::~ShmSegment() {
    if (data_ != nullptr) {
        ::munmap(data_, size_);
    }
}

// ------------------------------------------------------------- ShmMailbox --

void ShmMailbox::push(Envelope e, const std::atomic<bool>& abort) {
    const std::size_t needed =
        e.payload.empty() ? 1 : (e.payload.size() + kShmMaxPayload - 1) / kShmMaxPayload;
    if (needed > kShmMailboxSlots) {
        throw Error(ErrorCode::Resource,
                    "minimpi: message of " + std::to_string(e.payload.size()) +
                        " bytes exceeds the shm mailbox capacity (" +
                        std::to_string(kShmMailboxSlots * kShmMaxPayload) + " bytes)");
    }
    Backoff backoff;
    for (;;) {
        {
            SpinLockGuard guard(sh_->lock);
            // Allocate the whole chain or nothing (partial chains go back
            // to the free list so a big message can't wedge the mailbox).
            std::int32_t first = -1;
            std::int32_t prev = -1;
            std::size_t got = 0;
            for (; got < needed; ++got) {
                const std::int32_t idx = alloc_slot(*sh_);
                if (idx < 0) {
                    break;
                }
                sh_->slots[static_cast<std::size_t>(idx)].cont = -1;
                if (prev >= 0) {
                    sh_->slots[static_cast<std::size_t>(prev)].cont = idx;
                } else {
                    first = idx;
                }
                prev = idx;
            }
            if (got == needed) {
                ShmSlot& s = sh_->slots[static_cast<std::size_t>(first)];
                s.comm_id = e.comm_id;
                s.cseq = e.cseq;
                s.src = e.src;
                s.tag = e.tag;
                s.collective = e.collective ? 1 : 0;
                s.size = static_cast<std::uint32_t>(e.payload.size());
                s.next = -1;
                std::size_t copied = 0;
                for (std::int32_t idx = first; idx >= 0;
                     idx = sh_->slots[static_cast<std::size_t>(idx)].cont) {
                    const std::size_t chunk =
                        std::min(kShmMaxPayload, e.payload.size() - copied);
                    if (chunk > 0) {
                        std::memcpy(sh_->slots[static_cast<std::size_t>(idx)].payload,
                                    e.payload.data() + copied, chunk);
                    }
                    copied += chunk;
                }
                if (sh_->tail >= 0) {
                    sh_->slots[static_cast<std::size_t>(sh_->tail)].next = first;
                } else {
                    sh_->head = first;
                }
                sh_->tail = first;
                ++sh_->count;
                return;
            }
            while (first >= 0) {
                const std::int32_t cont = sh_->slots[static_cast<std::size_t>(first)].cont;
                sh_->slots[static_cast<std::size_t>(first)].next = sh_->free_head;
                sh_->free_head = first;
                first = cont;
            }
        }
        // Backpressure: not enough free slots. Wait for the receiver —
        // unless the team is aborting, in which case it may never drain.
        if (abort.load(std::memory_order_acquire)) {
            throw_aborted();
        }
        backoff.pause();
    }
}

Envelope ShmMailbox::match(const MatchSpec& spec, const std::atomic<bool>& abort) {
    Backoff backoff;
    for (;;) {
        if (auto e = try_match(spec)) {
            return std::move(*e);
        }
        if (abort.load(std::memory_order_acquire)) {
            throw_aborted();
        }
        backoff.pause();
    }
}

std::optional<Envelope> ShmMailbox::try_match(const MatchSpec& spec) {
    const SpinLockGuard guard(sh_->lock);
    std::int32_t prev = -1;
    for (std::int32_t idx = sh_->head; idx >= 0; idx = sh_->slots[static_cast<std::size_t>(idx)].next) {
        ShmSlot& s = sh_->slots[static_cast<std::size_t>(idx)];
        if (matches_slot(spec, s)) {
            Envelope e;
            e.comm_id = s.comm_id;
            e.cseq = s.cseq;
            e.src = s.src;
            e.tag = s.tag;
            e.collective = s.collective != 0;
            e.payload.resize(s.size);
            std::size_t copied = 0;
            for (std::int32_t c = idx; c >= 0;
                 c = sh_->slots[static_cast<std::size_t>(c)].cont) {
                const std::size_t chunk = std::min(kShmMaxPayload, e.payload.size() - copied);
                if (chunk > 0) {
                    std::memcpy(e.payload.data() + copied,
                                sh_->slots[static_cast<std::size_t>(c)].payload, chunk);
                }
                copied += chunk;
            }
            if (prev >= 0) {
                sh_->slots[static_cast<std::size_t>(prev)].next = s.next;
            } else {
                sh_->head = s.next;
            }
            if (sh_->tail == idx) {
                sh_->tail = prev;
            }
            std::int32_t c = idx;
            while (c >= 0) {
                const std::int32_t cont = sh_->slots[static_cast<std::size_t>(c)].cont;
                sh_->slots[static_cast<std::size_t>(c)].next = sh_->free_head;
                sh_->free_head = c;
                c = cont;
            }
            --sh_->count;
            return e;
        }
        prev = idx;
    }
    return std::nullopt;
}

std::optional<Status> ShmMailbox::peek(const MatchSpec& spec) {
    const SpinLockGuard guard(sh_->lock);
    for (std::int32_t idx = sh_->head; idx >= 0; idx = sh_->slots[static_cast<std::size_t>(idx)].next) {
        const ShmSlot& s = sh_->slots[static_cast<std::size_t>(idx)];
        if (matches_slot(spec, s)) {
            return Status{s.src, s.tag, s.size};
        }
    }
    return std::nullopt;
}

void ShmMailbox::interrupt() {}

std::size_t ShmMailbox::pending() {
    const SpinLockGuard guard(sh_->lock);
    return sh_->count;
}

// ------------------------------------------------------- ShmWindowStorage --

namespace {

[[nodiscard]] std::atomic<std::uint32_t>& lock_word(std::byte* words, int rank) noexcept {
    return *reinterpret_cast<std::atomic<std::uint32_t>*>(words +
                                                          static_cast<std::size_t>(rank) * 64);
}

}  // namespace

ShmWindowStorage::ShmWindowStorage(std::shared_ptr<ShmSegment> segment, std::size_t offset,
                                   int ranks)
    : segment_(std::move(segment)),
      words_(segment_->data() + offset),
      data_(words_ + static_cast<std::size_t>(ranks) * 64) {
    for (int r = 0; r < ranks; ++r) {
        new (words_ + static_cast<std::size_t>(r) * 64) std::atomic<std::uint32_t>(0);
    }
}

bool ShmWindowStorage::try_lock(int rank, LockType type) noexcept {
    return epoch_try_lock(lock_word(words_, rank), type);
}

bool ShmWindowStorage::try_lock_bounded(int rank, LockType type,
                                        std::chrono::milliseconds timeout) noexcept {
    return epoch_try_lock_bounded(lock_word(words_, rank), type, timeout);
}

void ShmWindowStorage::unlock(int rank, LockType type) noexcept {
    epoch_unlock(lock_word(words_, rank), type);
}

// ------------------------------------------------------------ ShmTransport --

ShmTransport::ShmTransport(int world_size) {
    const std::size_t control_region = align_up64(sizeof(ShmControl));
    const std::size_t live_region = static_cast<std::size_t>(world_size) * sizeof(ShmLiveLine);
    const std::size_t mailbox_region = align_up64(sizeof(ShmMailboxShared));
    const std::size_t mailbox_base = control_region + live_region;
    const std::size_t arena_base =
        mailbox_base + static_cast<std::size_t>(world_size) * mailbox_region;
    segment_ = std::make_shared<ShmSegment>(arena_base + kShmWindowArenaBytes);

    control_ = new (segment_->data()) ShmControl{};
    control_->arena_next.store(arena_base, std::memory_order_relaxed);
    control_->arena_end = arena_base + kShmWindowArenaBytes;

    live_ = segment_->data() + control_region;
    for (int r = 0; r < world_size; ++r) {
        new (live_ + static_cast<std::size_t>(r) * sizeof(ShmLiveLine)) ShmLiveLine{};
    }

    mailboxes_.reserve(static_cast<std::size_t>(world_size));
    for (int r = 0; r < world_size; ++r) {
        auto* shared = new (segment_->data() + mailbox_base +
                            static_cast<std::size_t>(r) * mailbox_region) ShmMailboxShared;
        mailboxes_.push_back(std::make_unique<ShmMailbox>(shared));
    }
}

void ShmTransport::beat(int world_rank) noexcept {
    live_line(live_, world_rank).beats.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t ShmTransport::heartbeat(int world_rank) noexcept {
    return live_line(live_, world_rank).beats.load(std::memory_order_acquire);
}

void ShmTransport::mark_dead(int world_rank) noexcept {
    live_line(live_, world_rank).dead.store(1, std::memory_order_release);
}

bool ShmTransport::is_dead(int world_rank) noexcept {
    return live_line(live_, world_rank).dead.load(std::memory_order_acquire) != 0;
}

std::unique_ptr<WindowStorage> ShmTransport::allocate_window(std::size_t total_bytes,
                                                             int ranks) {
    const std::size_t lock_bytes = static_cast<std::size_t>(ranks) * 64;
    const std::size_t need =
        align_up64(lock_bytes + std::max<std::size_t>(total_bytes, 1));
    const std::uint64_t off =
        control_->arena_next.fetch_add(need, std::memory_order_relaxed);
    if (off + need > control_->arena_end) {
        throw Error(ErrorCode::Resource,
                    "minimpi: shm window arena exhausted (" + std::to_string(need) +
                        " bytes requested past the " +
                        std::to_string(kShmWindowArenaBytes) + "-byte arena)");
    }
    return std::make_unique<ShmWindowStorage>(segment_, off, ranks);
}

void ShmTransport::signal_abort() noexcept {
    if (control_ != nullptr) {
        control_->abort_word.store(1, std::memory_order_release);
    }
}

}  // namespace minimpi::detail
