/// \file runtime.cpp

#include "minimpi/runtime.hpp"

#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace minimpi {

namespace {

constexpr std::uint64_t kWorldCommId = 1;

[[nodiscard]] bool is_abort_error(const std::exception_ptr& ep) noexcept {
    try {
        std::rethrow_exception(ep);
    } catch (const Error& e) {
        return e.code() == ErrorCode::Aborted;
    } catch (...) {
        return false;
    }
}

}  // namespace

void Runtime::run(int world_size, const Topology& topology,
                  const std::function<void(Context&)>& fn) {
    run(world_size, topology, transport_from_env(), fn);
}

void Runtime::run(int world_size, const Topology& topology, TransportKind transport,
                  const std::function<void(Context&)>& fn) {
    if (world_size < 1) {
        throw Error(ErrorCode::InvalidArgument, "minimpi: world_size must be >= 1");
    }
    topology.validate_world(world_size);
    if (!fn) {
        throw Error(ErrorCode::InvalidArgument, "minimpi: rank function must not be empty");
    }

    detail::RuntimeState state;
    state.world_size = world_size;
    state.topology = topology;
    state.transport = detail::make_transport(transport, world_size);

    auto world_meta = std::make_shared<detail::CommMeta>();
    world_meta->id = kWorldCommId;
    world_meta->members.resize(static_cast<std::size_t>(world_size));
    for (int r = 0; r < world_size; ++r) {
        world_meta->members[static_cast<std::size_t>(r)] = r;
    }

    std::mutex error_mutex;
    std::exception_ptr first_error;

    auto rank_main = [&](int rank) {
        try {
            Comm world(&state, world_meta, rank);
            Context ctx(&state, std::move(world));
            fn(ctx);
        } catch (...) {
            {
                const std::lock_guard<std::mutex> lock(error_mutex);
                const auto current = std::current_exception();
                // Keep the first *primary* failure: an Aborted error is
                // only the echo of some other rank's real exception.
                if (!first_error || (is_abort_error(first_error) && !is_abort_error(current))) {
                    first_error = current;
                }
            }
            state.abort.store(true, std::memory_order_release);
            state.interrupt_all();
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(world_size));
    for (int r = 0; r < world_size; ++r) {
        threads.emplace_back(rank_main, r);
    }
    for (auto& t : threads) {
        t.join();
    }
    if (first_error) {
        std::rethrow_exception(first_error);
    }
}

void Runtime::run(int world_size, const std::function<void(Context&)>& fn) {
    Topology topo;
    topo.ranks_per_node = world_size;  // everyone on one simulated node
    run(world_size, topo, fn);
}

void Runtime::run(int world_size, TransportKind transport,
                  const std::function<void(Context&)>& fn) {
    Topology topo;
    topo.ranks_per_node = world_size;
    run(world_size, topo, transport, fn);
}

}  // namespace minimpi
