/// \file psia_spinimages.cpp
/// The paper's second evaluation application on the real runtime: generate
/// spin images (Johnson's 3D shape descriptor) for every oriented point of
/// a synthetic cloud, self-scheduled hierarchically, and print a few of
/// them as ASCII heat maps.
///
///   $ ./psia_spinimages --points 3000 --nodes 2 --rpn 4 --inter FAC2 --intra GSS

#include <iostream>
#include <mutex>

#include "apps/psia.hpp"
#include "core/hdls.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

void print_ascii(const hdls::apps::SpinImage& img) {
    static constexpr char kShades[] = " .:-=+*#%@";
    float max_v = 0.0F;
    for (const float v : img.data()) {
        max_v = std::max(max_v, v);
    }
    for (int row = 0; row < img.height(); ++row) {
        std::cout << "    ";
        for (int col = 0; col < img.width(); ++col) {
            const float v = img.at(row, col);
            const int shade =
                max_v > 0 ? static_cast<int>(9.0F * v / max_v) : 0;
            std::cout << kShades[shade];
        }
        std::cout << "\n";
    }
}

}  // namespace

int main(int argc, char** argv) {
    using namespace hdls;
    util::ArgParser cli("psia_spinimages",
                        "Hierarchically self-scheduled spin-image generation (paper app #2)");
    cli.add_int("points", 2500, "synthetic cloud size");
    cli.add_string("inter", "FAC2", "inter-node DLS technique");
    cli.add_string("intra", "GSS", "intra-node DLS technique");
    cli.add_int("nodes", 2, "simulated compute nodes");
    cli.add_int("rpn", 4, "workers per node");
    cli.add_int("show", 2, "number of spin images to print as ASCII art");
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
        const auto inter = dls::technique_from_string(cli.get_string("inter"));
        const auto intra = dls::technique_from_string(cli.get_string("intra"));
        if (!inter || !intra) {
            std::cerr << "unknown technique\n";
            return 2;
        }

        const auto n_points = static_cast<std::size_t>(cli.get_int("points"));
        const apps::PointCloud cloud = apps::PointCloud::synthetic(n_points, 0xC10DULL);
        apps::PsiaConfig pcfg;
        pcfg.image_width = 16;
        pcfg.image_height = 16;
        pcfg.bin_size = 0.04;

        std::cout << "PSIA: spin images for " << cloud.size()
                  << " oriented points (synthetic torus+lobe scene), "
                  << dls::technique_name(*inter) << "+" << dls::technique_name(*intra) << "\n";

        // One spin image per oriented point — the paper's parallel loop.
        std::vector<double> masses(cloud.size(), 0.0);
        core::ClusterShape shape{static_cast<int>(cli.get_int("nodes")),
                                 static_cast<int>(cli.get_int("rpn"))};
        core::HierConfig cfg;
        cfg.inter = *inter;
        cfg.intra = *intra;
        const auto report = parallel_for(
            shape, core::Approach::MpiMpi, cfg, static_cast<std::int64_t>(cloud.size()),
            [&](std::int64_t b, std::int64_t e) {
                for (std::int64_t i = b; i < e; ++i) {
                    const auto img =
                        apps::compute_spin_image(cloud, static_cast<std::size_t>(i), pcfg);
                    masses[static_cast<std::size_t>(i)] = img.mass();
                }
            });
        report.print(std::cout);

        const auto s = util::summarize(masses);
        std::cout << "spin-image mass (= support size): mean "
                  << util::format_double(s.mean, 1) << ", min " << util::format_double(s.min, 1)
                  << ", max " << util::format_double(s.max, 1) << ", CoV "
                  << util::format_double(s.cov, 2)
                  << "  <- the moderate PSIA imbalance the paper describes\n";

        const auto show = std::min<std::int64_t>(cli.get_int("show"),
                                                 static_cast<std::int64_t>(cloud.size()));
        for (std::int64_t k = 0; k < show; ++k) {
            // Spread the previews across the cloud.
            const std::size_t idx = static_cast<std::size_t>(k) * cloud.size() /
                                    static_cast<std::size_t>(show);
            std::cout << "\n  spin image of point " << idx << ":\n";
            print_ascii(apps::compute_spin_image(cloud, idx, pcfg));
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
}
