/// \file cluster_sim_explorer.cpp
/// Interactive front-end to the discrete-event cluster simulator: pick an
/// execution model, a scheduling combination, a cluster shape and a
/// workload, and inspect the per-worker time breakdown. Useful for
/// exploring configurations beyond the paper's figures.
///
///   $ ./cluster_sim_explorer --model MPI+MPI --inter GSS --intra SS \
///       --nodes 4 --rpn 16 --workload exponential --iterations 100000 \
///       --mean-us 300 --cov 1.0 --per-worker

#include <iostream>

#include "apps/mandelbrot.hpp"
#include "apps/synthetic.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace hdls;
    util::ArgParser cli("cluster_sim_explorer",
                        "Explore the hierarchical-DLS cluster simulator interactively");
    cli.add_string("model", "MPI+MPI", "MPI+MPI | MPI+OpenMP | nowait");
    cli.add_string("inter", "GSS", "inter-node DLS technique");
    cli.add_string("intra", "GSS", "intra-node DLS technique");
    cli.add_int("nodes", 4, "compute nodes");
    cli.add_int("rpn", 16, "workers per node");
    cli.add_string("workload",
                   "exponential",
                   "constant|uniform|gaussian|exponential|bimodal|increasing|decreasing|"
                   "mandelbrot");
    cli.add_int("iterations", 100000, "loop size (synthetic workloads)");
    cli.add_double("mean-us", 300.0, "mean iteration cost in us (synthetic workloads)");
    cli.add_double("cov", 1.0, "target CoV (synthetic workloads)");
    cli.add_int("min-chunk", 1, "minimum chunk size of both levels");
    cli.add_flag("per-worker", "print the per-worker breakdown table");
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
        const auto model = sim::exec_model_from_string(cli.get_string("model"));
        const auto inter = dls::technique_from_string(cli.get_string("inter"));
        const auto intra = dls::technique_from_string(cli.get_string("intra"));
        if (!model || !inter || !intra) {
            std::cerr << "unknown model or technique\n";
            return 2;
        }

        sim::WorkloadTrace trace;
        const std::string workload = cli.get_string("workload");
        if (workload == "mandelbrot") {
            apps::MandelbrotConfig mcfg;
            mcfg.width = 512;
            mcfg.height = 512;
            trace = sim::WorkloadTrace(
                apps::mandelbrot_cost_trace(mcfg, cli.get_double("mean-us") * 1e-6 / 50.0));
        } else {
            const auto kind = apps::workload_from_string(workload);
            if (!kind) {
                std::cerr << "unknown workload '" << workload << "'\n";
                return 2;
            }
            apps::WorkloadSpec spec;
            spec.kind = *kind;
            spec.iterations = static_cast<std::size_t>(cli.get_int("iterations"));
            spec.mean_seconds = cli.get_double("mean-us") * 1e-6;
            spec.cov = cli.get_double("cov");
            trace = sim::WorkloadTrace(apps::make_workload(spec));
        }

        sim::ClusterSpec cluster;
        cluster.nodes = static_cast<int>(cli.get_int("nodes"));
        cluster.workers_per_node = static_cast<int>(cli.get_int("rpn"));
        sim::SimConfig cfg;
        cfg.inter = *inter;
        cfg.intra = *intra;
        cfg.min_chunk = cli.get_int("min-chunk");

        const auto s = trace.stats();
        std::cout << exec_model_name(*model) << " " << dls::technique_name(*inter) << "+"
                  << dls::technique_name(*intra) << " on " << cluster.nodes << "x"
                  << cluster.workers_per_node << ", workload '" << workload
                  << "': N=" << trace.iterations() << ", mean "
                  << util::format_seconds(s.mean) << ", CoV " << util::format_double(s.cov, 2)
                  << "\n\n";

        const auto report = simulate(*model, cluster, cfg, trace);
        report.print(std::cout);

        if (cli.get_flag("per-worker")) {
            util::TextTable table({"node", "worker", "busy (s)", "overhead (s)",
                                   "lock wait (s)", "idle (s)", "finish (s)", "iters",
                                   "chunks", "refills"});
            for (const auto& w : report.workers) {
                table.add_row({std::to_string(w.node), std::to_string(w.worker_in_node),
                               util::format_double(w.busy, 3),
                               util::format_double(w.overhead, 4),
                               util::format_double(w.lock_wait, 4),
                               util::format_double(w.idle, 4),
                               util::format_double(w.finish, 3), std::to_string(w.iterations),
                               std::to_string(w.sub_chunks),
                               std::to_string(w.global_refills)});
            }
            std::cout << "\n";
            table.print(std::cout);
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
}
