/// \file mandelbrot_render.cpp
/// The paper's first evaluation application, end to end on the real
/// (thread-backed) runtime: render a Mandelbrot image with hierarchical
/// dynamic loop self-scheduling, verify the result against a serial
/// render, and write a PPM.
///
///   $ ./mandelbrot_render --inter GSS --intra STATIC --nodes 2 --rpn 4 \
///       --width 512 --height 512 --out mandelbrot.ppm

#include <fstream>
#include <iostream>

#include "apps/mandelbrot.hpp"
#include "core/hdls.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
    using namespace hdls;
    util::ArgParser cli("mandelbrot_render",
                        "Hierarchically self-scheduled Mandelbrot rendering (paper app #1)");
    cli.add_string("inter", "GSS", "inter-node DLS technique");
    cli.add_string("intra", "GSS", "intra-node DLS technique");
    cli.add_string("approach", "MPI+MPI", "MPI+MPI or MPI+OpenMP");
    cli.add_int("nodes", 2, "simulated compute nodes");
    cli.add_int("rpn", 4, "workers per node");
    cli.add_int("width", 384, "image width");
    cli.add_int("height", 384, "image height");
    cli.add_int("max-iter", 256, "escape iteration limit");
    cli.add_string("out", "", "write a PPM (P2) image to this path");
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
        const auto inter = dls::technique_from_string(cli.get_string("inter"));
        const auto intra = dls::technique_from_string(cli.get_string("intra"));
        if (!inter || !intra) {
            std::cerr << "unknown technique (try STATIC, SS, GSS, TSS, FAC2, ...)\n";
            return 2;
        }
        const std::string approach_str = cli.get_string("approach");
        const core::Approach approach = approach_str == "MPI+OpenMP"
                                            ? core::Approach::MpiOpenMp
                                            : core::Approach::MpiMpi;

        apps::MandelbrotConfig mcfg;
        mcfg.width = static_cast<int>(cli.get_int("width"));
        mcfg.height = static_cast<int>(cli.get_int("height"));
        mcfg.max_iter = static_cast<int>(cli.get_int("max-iter"));

        core::ClusterShape shape{static_cast<int>(cli.get_int("nodes")),
                                 static_cast<int>(cli.get_int("rpn"))};
        core::HierConfig cfg;
        cfg.inter = *inter;
        cfg.intra = *intra;

        std::cout << "Rendering " << mcfg.width << "x" << mcfg.height << " (max_iter "
                  << mcfg.max_iter << ") with " << core::approach_name(approach) << " "
                  << dls::technique_name(*inter) << "+" << dls::technique_name(*intra)
                  << " on " << shape.nodes << "x" << shape.workers_per_node << " workers\n";

        apps::MandelbrotImage image(mcfg);
        const auto report = parallel_for(shape, approach, cfg, mcfg.pixels(),
                                         [&](std::int64_t b, std::int64_t e) {
                                             image.compute_range(b, e);
                                         });
        report.print(std::cout);

        // Correctness: identical to a serial render, pixel for pixel.
        apps::MandelbrotImage serial(mcfg);
        serial.compute_range(0, mcfg.pixels());
        std::cout << "serial parity: "
                  << (image.checksum() == serial.checksum() ? "OK" : "FAILED") << "\n";

        if (const std::string out = cli.get_string("out"); !out.empty()) {
            std::ofstream ofs(out);
            image.write_ppm(ofs);
            std::cout << "wrote " << out << "\n";
        }
        return image.checksum() == serial.checksum() ? 0 : 1;
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
}
