/// \file metrics_dashboard.cpp
/// ASCII live view of the always-on runtime metrics: runs an imbalanced
/// hierarchical loop in the background and renders one dashboard frame per
/// sampler tick — per-level acquire/steal rates, prefetch hit rate,
/// histogram sparklines and the watchdog state.
///
///   $ ./metrics_dashboard                       # live until the run ends
///   $ ./metrics_dashboard --frames 3            # bounded (CI smoke)
///   $ HDLS_TOPOLOGY=racks=2,nodes=2,cores=2 ./metrics_dashboard
///   $ HDLS_INTER_BACKEND=sharded ./metrics_dashboard
///
/// The dashboard consumes the same MetricsSampler series an external
/// scraper would read from the exposition file — nothing here has a side
/// channel into the executors.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <iostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/hdls.hpp"
#include "metrics/metrics.hpp"
#include "metrics/sampler.hpp"
#include "util/cli.hpp"

namespace {

using hdls::metrics::Snapshot;
using hdls::metrics::SnapshotEntry;

/// Eight-level unicode sparkline over the nonempty prefix of a histogram's
/// per-bucket counts (log2 bucket b holds values in [2^(b-1), 2^b - 1]).
std::string sparkline(const std::vector<std::uint64_t>& buckets) {
    static const char* kBlocks[] = {"_", "▁", "▂", "▃",
                                    "▄", "▅", "▆", "▇"};
    std::size_t last = 0;
    std::uint64_t peak = 0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        if (buckets[b] > 0) {
            last = b;
            peak = std::max(peak, buckets[b]);
        }
    }
    if (peak == 0) {
        return "(empty)";
    }
    std::string out;
    for (std::size_t b = 0; b <= last; ++b) {
        if (buckets[b] == 0) {
            out += kBlocks[0];
            continue;
        }
        // Log scale: one count is still visible next to a million.
        const double h = std::log2(static_cast<double>(buckets[b]) + 1.0) /
                         std::log2(static_cast<double>(peak) + 1.0);
        const int idx = 1 + static_cast<int>(h * 6.0 + 0.5);
        out += kBlocks[std::min(idx, 7)];
    }
    return out;
}

std::uint64_t counter_at(const Snapshot& s, std::string_view name,
                         const hdls::metrics::Labels& labels) {
    const SnapshotEntry* e = s.find(name, labels);
    return e != nullptr ? e->value : 0;
}

/// Per-second rate of a counter between two samples.
double rate(const Snapshot& cur, const Snapshot& prev, double dt, std::string_view name,
            const hdls::metrics::Labels& labels) {
    if (dt <= 0.0) {
        return 0.0;
    }
    const std::uint64_t c = counter_at(cur, name, labels);
    const std::uint64_t p = counter_at(prev, name, labels);
    return c > p ? static_cast<double>(c - p) / dt : 0.0;
}

void render_frame(std::ostream& os, const Snapshot& cur, const Snapshot& prev, double t,
                  double dt, bool clear) {
    if (clear) {
        os << "\033[2J\033[H";
    }
    const SnapshotEntry* workers = cur.find("hdls_workers_active");
    char head[96];
    std::snprintf(head, sizeof(head),
                  "hdls metrics dashboard  t=%.1fs  workers_active=%lld\n", t,
                  static_cast<long long>(workers != nullptr ? workers->gauge : 0));
    os << head;
    os << "  level  acquires/s  steals/s  steal%   pops/s   latency (log2 ns)\n";
    for (int level = 0; level < static_cast<int>(hdls::metrics::kMaxLevels); ++level) {
        const hdls::metrics::Labels l = {{"level", std::to_string(level)}};
        const std::uint64_t total_acquires =
            counter_at(cur, "hdls_sched_acquires_total", l) +
            counter_at(cur, "hdls_sched_steals_total", l) +
            counter_at(cur, "hdls_sched_pops_total", l);
        if (total_acquires == 0) {
            continue;  // level not present in this topology
        }
        const double acq = rate(cur, prev, dt, "hdls_sched_acquires_total", l);
        const double steals = rate(cur, prev, dt, "hdls_sched_steals_total", l);
        const double pops = rate(cur, prev, dt, "hdls_sched_pops_total", l);
        const double steal_pct = acq + steals > 0.0 ? 100.0 * steals / (acq + steals) : 0.0;
        const SnapshotEntry* lat = cur.find("hdls_sched_acquire_latency_ns", l);
        char line[128];
        std::snprintf(line, sizeof(line), "  %5d  %10.1f  %8.1f  %5.1f%%  %8.1f   ", level,
                      acq, steals, steal_pct, pops);
        os << line << (lat != nullptr ? sparkline(lat->buckets) : "(empty)") << "\n";
    }
    const std::uint64_t hits = counter_at(cur, "hdls_sched_prefetch_hits_total", {});
    const std::uint64_t misses = counter_at(cur, "hdls_sched_prefetch_misses_total", {});
    if (hits + misses > 0) {
        char line[64];
        std::snprintf(line, sizeof(line), "  prefetch hit rate: %.1f%%\n",
                      100.0 * static_cast<double>(hits) /
                          static_cast<double>(hits + misses));
        os << line;
    }
    if (const SnapshotEntry* exec = cur.find("hdls_exec_chunk_ns")) {
        os << "  chunk exec (log2 ns):      " << sparkline(exec->buckets) << "  count="
           << exec->count << "\n";
    }
    os << "  chunks/s: " << static_cast<std::int64_t>(
              rate(cur, prev, dt, "hdls_exec_chunks_total", {}))
       << "  lock retries: " << counter_at(cur, "hdls_window_lock_retries_total", {})
       << "  cas retries: " << counter_at(cur, "hdls_window_cas_retries_total", {});
    const std::uint64_t stalls = counter_at(cur, "hdls_watchdog_stalls_total", {});
    os << "  watchdog: " << (stalls == 0 ? "ok" : "STALLS=" + std::to_string(stalls))
       << "\n";
    os.flush();
}

}  // namespace

int main(int argc, char** argv) {
    using namespace hdls;

    util::ArgParser cli("metrics_dashboard",
                        "ASCII live view of the always-on runtime metrics");
    cli.add_int("frames", 0, "stop after this many frames (0 = until the run ends)");
    cli.add_int("period-ms", 200, "sampler period / frame interval");
    cli.add_int("iterations", 30000, "loop size of the background workload");
    cli.add_flag("no-clear", "never clear the screen (one frame block per tick)");
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }

    core::ClusterShape shape;
    shape.nodes = 2;
    shape.workers_per_node = 4;

    core::HierConfig cfg;
    cfg.inter = dls::Technique::GSS;
    cfg.intra = dls::Technique::GSS;
    try {
        cfg.inter_backend = core::inter_backend_from_env();
        cfg.topology = core::topology_from_env();
        cfg.prefetch = core::prefetch_from_env();
    } catch (const std::invalid_argument& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
    if (!cfg.topology.empty()) {
        shape = core::shape_from_topology(cfg.topology);
    }

    const std::int64_t n = cli.get_int("iterations");
    const auto period = std::chrono::milliseconds(cli.get_int("period-ms"));
    const std::int64_t max_frames = cli.get_int("frames");
    const bool clear = !cli.get_flag("no-clear") && ::isatty(STDOUT_FILENO) != 0;

    // The workload under observation: mildly imbalanced sleep per iteration,
    // running on its own thread while the main thread renders frames.
    std::atomic<bool> done{false};
    std::thread run_thread([&] {
        const auto body = [](std::int64_t begin, std::int64_t end) {
            for (std::int64_t i = begin; i < end; ++i) {
                std::this_thread::sleep_for(std::chrono::microseconds(40 * (1 + i % 5)));
            }
        };
        (void)core::run_hierarchical(shape, core::Approach::MpiMpi, cfg, n, body);
        done.store(true, std::memory_order_release);
    });

    metrics::MetricsSampler sampler(metrics::registry(), period);
    sampler.start();

    std::int64_t frames = 0;
    Snapshot prev = metrics::registry().snapshot();
    double prev_t = 0.0;
    while (!done.load(std::memory_order_acquire) &&
           (max_frames == 0 || frames < max_frames)) {
        std::this_thread::sleep_for(period);
        const std::vector<metrics::MetricsSampler::Sample> series = sampler.series();
        if (series.empty()) {
            continue;
        }
        const metrics::MetricsSampler::Sample& last = series.back();
        render_frame(std::cout, last.snapshot, prev, last.t_seconds,
                     last.t_seconds - prev_t, clear);
        prev = last.snapshot;
        prev_t = last.t_seconds;
        ++frames;
    }

    run_thread.join();
    sampler.stop();

    // Closing frame over the whole run (rates vs. the empty registry are
    // meaningless here, so diff against the first retained sample).
    const std::vector<metrics::MetricsSampler::Sample> series = sampler.series();
    if (series.size() >= 2) {
        render_frame(std::cout, series.back().snapshot, series.front().snapshot,
                     series.back().t_seconds,
                     series.back().t_seconds - series.front().t_seconds, clear);
    }
    std::cout << "run complete: " << frames << " live frame(s), "
              << series.size() << " sample(s) retained\n";
    return 0;
}
