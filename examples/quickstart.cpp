/// \file quickstart.cpp
/// Smallest complete hdls program: self-schedule a loop hierarchically on a
/// thread-backed "cluster" of 2 nodes x 4 workers with GSS across nodes and
/// GSS within nodes (the paper's MPI+MPI approach), then print the report.
///
///   $ ./quickstart
///   $ HDLS_TOPOLOGY=racks=2,nodes=2,cores=2 ./quickstart   # 3-level tree
///   $ HDLS_INTER_BACKEND=sharded ./quickstart              # stealing levels
///
/// The loop body just burns a deterministic, intentionally imbalanced
/// amount of time per iteration; the report shows how the scheduling
/// hierarchy balanced it.

#include <chrono>
#include <cmath>
#include <iostream>
#include <stdexcept>
#include <thread>

#include "core/hdls.hpp"

int main() {
    using namespace hdls;

    constexpr std::int64_t kIterations = 2000;

    core::ClusterShape shape;
    shape.nodes = 2;
    shape.workers_per_node = 4;

    core::HierConfig cfg;
    cfg.inter = dls::Technique::GSS;   // between level-0 groups (root queue)
    cfg.intra = dls::Technique::GSS;   // within a leaf group (shared local queue)
    core::ChaosSpec chaos;
    try {
        // HDLS_INTER_BACKEND=sharded swaps every interior level for the
        // work-stealing backend (per-entity shards at the root, per-child
        // shards in the relays — see README, "Architecture").
        cfg.inter_backend = core::inter_backend_from_env();
        // HDLS_TOPOLOGY reshapes the machine tree (racks=2,nodes=2,cores=2
        // schedules the same 8 workers through a 3-level hierarchy).
        // Malformed values throw — fix the spec rather than silently
        // measuring defaults.
        cfg.topology = core::topology_from_env();
        // HDLS_PREFETCH=1 overlaps each worker's next chunk acquisition
        // with its current chunk's execution (double-buffered slot).
        cfg.prefetch = core::prefetch_from_env();
        // HDLS_CHAOS=kill:<rank>@<pct>% fail-stops a rank mid-loop; with
        // HDLS_LEASE=1 the survivors reclaim its chunks (the fault drill —
        // see docs/fault-tolerance.md). Only peeked at here to decide
        // whether the baseline comparison below makes sense.
        chaos = core::chaos_from_env();
    } catch (const std::invalid_argument& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
    if (!cfg.topology.empty()) {
        shape = core::shape_from_topology(cfg.topology);
    }

    // Iteration i costs ~ (1 + i mod 7) * 30us: mildly imbalanced.
    const auto body = [](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
            std::this_thread::sleep_for(std::chrono::microseconds(30 * (1 + i % 7)));
        }
    };

    // Show the hierarchy the run will schedule over, level by level.
    const core::ResolvedHierarchy rh = core::resolve_hierarchy(shape, cfg);
    std::cout << "hdls quickstart: " << kIterations << " iterations on " << shape.nodes
              << " leaf groups x " << shape.workers_per_node << " workers\n"
              << "scheduling hierarchy:\n";
    for (int d = 0; d < rh.depth(); ++d) {
        const auto& lv = rh.tree[static_cast<std::size_t>(d)];
        const auto& lc = rh.levels[static_cast<std::size_t>(d)];
        std::cout << "  level " << d << ": " << lv.name << " x" << lv.fan_out << "  ["
                  << dls::technique_name(lc.technique);
        if (lc.backend) {
            std::cout << ", " << dls::inter_backend_name(*lc.backend);
        } else {
            std::cout << ", shared local queue";
        }
        std::cout << "]\n";
    }
    std::cout << "\n";

    const core::ExecutionReport report =
        parallel_for(shape, core::Approach::MpiMpi, cfg, kIterations, body);
    report.print(std::cout);

    bool all_once = report.executed_iterations() == kIterations;
    if (chaos.enabled()) {
        // A fault drill only exercises the MPI+MPI executor; the baseline
        // has no failure handling and would refuse the chaos spec.
        std::cout << "\n(baseline comparison skipped: HDLS_CHAOS drills the"
                     " MPI+MPI executor only)\n";
    } else {
        // The same loop under the MPI+OpenMP-style baseline, for comparison.
        const core::ExecutionReport baseline =
            parallel_for(shape, core::Approach::MpiOpenMp, cfg, kIterations, body);
        baseline.print(std::cout);
        all_once = all_once && baseline.executed_iterations() == kIterations;
    }

    std::cout << "\nEvery iteration ran exactly once: " << (all_once ? "yes" : "NO (bug!)")
              << "\n";
    return all_once ? 0 : 1;
}
