/// \file quickstart.cpp
/// Smallest complete hdls program: self-schedule a loop hierarchically on a
/// thread-backed "cluster" of 2 nodes x 4 workers with GSS across nodes and
/// GSS within nodes (the paper's MPI+MPI approach), then print the report.
///
///   $ ./quickstart
///
/// The loop body just burns a deterministic, intentionally imbalanced
/// amount of time per iteration; the report shows how the two-level
/// scheduler balanced it.

#include <chrono>
#include <cmath>
#include <iostream>
#include <thread>

#include "core/hdls.hpp"

int main() {
    using namespace hdls;

    constexpr std::int64_t kIterations = 2000;

    core::ClusterShape shape;
    shape.nodes = 2;
    shape.workers_per_node = 4;

    core::HierConfig cfg;
    cfg.inter = dls::Technique::GSS;   // across nodes (global work queue)
    cfg.intra = dls::Technique::GSS;   // within a node (shared local queue)
    // HDLS_INTER_BACKEND=sharded swaps the level-1 queue for the per-node
    // shard windows with CAS work stealing (see README, "Architecture").
    cfg.inter_backend = core::inter_backend_from_env();

    // Iteration i costs ~ (1 + i mod 7) * 30us: mildly imbalanced.
    const auto body = [](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
            std::this_thread::sleep_for(std::chrono::microseconds(30 * (1 + i % 7)));
        }
    };

    std::cout << "hdls quickstart: " << kIterations << " iterations on " << shape.nodes
              << " nodes x " << shape.workers_per_node << " workers\n\n";

    const core::ExecutionReport report =
        parallel_for(shape, core::Approach::MpiMpi, cfg, kIterations, body);
    report.print(std::cout);

    // The same loop under the MPI+OpenMP-style baseline, for comparison.
    const core::ExecutionReport baseline =
        parallel_for(shape, core::Approach::MpiOpenMp, cfg, kIterations, body);
    baseline.print(std::cout);

    std::cout << "\nEvery iteration ran exactly once: "
              << (report.executed_iterations() == kIterations &&
                          baseline.executed_iterations() == kIterations
                      ? "yes"
                      : "NO (bug!)")
              << "\n";
    return 0;
}
