/// \file trace_explorer.cpp
/// Runs any (inter, intra, approach, workload) combination with tracing on
/// and dumps the recorded chunk-lifecycle events — Chrome trace-event JSON
/// for chrome://tracing / ui.perfetto.dev, CSV for ad-hoc analysis, or an
/// ASCII Gantt straight to the terminal — plus the derived per-worker
/// overhead/compute breakdown.
///
///   $ ./trace_explorer --schedule GSS+SS --approach MPI+MPI \
///         --nodes 2 --wpn 4 --workload gaussian --iterations 2000 \
///         --format chrome --out trace.json
///
/// The loop body busy-spins each iteration for its synthetic cost, so the
/// recorded timeline reflects real contention on this machine.

#include <chrono>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <vector>

#include "apps/synthetic.hpp"
#include "core/hdls.hpp"
#include "util/cli.hpp"

namespace {

/// Burns `seconds` of calibrated multiply-add work through the SIMD burner
/// (sleep granularity is too coarse for the sub-millisecond iterations that
/// drive lock contention, and a clock-polling spin exercises none of the
/// execution ports the real kernels contend on).
void burn(double seconds) { hdls::apps::burn_seconds(seconds); }

}  // namespace

int main(int argc, char** argv) {
    using namespace hdls;

    util::ArgParser cli("trace_explorer",
                        "Traces one hierarchical loop execution and exports its events");
    cli.add_string("schedule", "GSS+SS",
                   "one technique per level, e.g. FAC2+STATIC or FAC2+GSS+SS");
    cli.add_string("approach", "MPI+MPI", "MPI+MPI | MPI+OpenMP");
    cli.add_int("nodes", 2, "simulated compute nodes");
    cli.add_int("wpn", 4, "workers (ranks/threads) per node");
    cli.add_string("topology", "", "machine tree, e.g. racks=2,nodes=2,cores=4 "
                                   "(default: HDLS_TOPOLOGY or the flat nodes x wpn)");
    cli.add_string("workload", "gaussian",
                   "constant|uniform|gaussian|exponential|bimodal|increasing|decreasing");
    cli.add_int("iterations", 2000, "loop size");
    cli.add_double("mean-us", 50.0, "mean iteration cost in microseconds");
    cli.add_double("cov", 0.5, "workload dispersion (CoV where meaningful)");
    cli.add_string("backend", "", "level-1 queue: centralized | sharded "
                                  "(default: HDLS_INTER_BACKEND or centralized)");
    cli.add_string("format", "chrome", "chrome | csv | gantt");
    cli.add_string("out", "", "output file (default: stdout)");
    cli.add_int("capacity", 1 << 14, "trace ring-buffer capacity per worker");
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }

    const auto cfg_opt = core::parse_schedule(cli.get_string("schedule"));
    if (!cfg_opt) {
        std::cerr << "bad --schedule '" << cli.get_string("schedule") << "'\n";
        return 2;
    }
    const auto approach = core::parse_approach(cli.get_string("approach"));
    if (!approach) {
        std::cerr << "bad --approach '" << cli.get_string("approach") << "'\n";
        return 2;
    }
    const auto kind = apps::workload_from_string(cli.get_string("workload"));
    if (!kind) {
        std::cerr << "bad --workload '" << cli.get_string("workload") << "'\n";
        return 2;
    }
    // Validate the output choices up front: a typo or unwritable path must
    // not cost the whole (busy-spinning) traced run.
    const std::string format = cli.get_string("format");
    if (format != "chrome" && format != "csv" && format != "gantt") {
        std::cerr << "bad --format '" << format << "'\n";
        return 2;
    }
    std::ofstream file;
    const std::string out = cli.get_string("out");
    if (!out.empty()) {
        file.open(out);
        if (!file) {
            std::cerr << "cannot open '" << out << "' for writing\n";
            return 2;
        }
    }

    core::HierConfig cfg = *cfg_opt;
    cfg.trace = core::trace_from_env(true);  // HDLS_TRACE=0 turns it off
    cfg.trace_capacity = static_cast<std::size_t>(cli.get_int("capacity"));
    try {
        cfg.inter_backend = core::inter_backend_from_env();
        cfg.topology = core::topology_from_env();
        cfg.prefetch = core::prefetch_from_env();
        if (const std::string topo = cli.get_string("topology"); !topo.empty()) {
            cfg.topology = core::parse_topology(topo);
        }
    } catch (const std::invalid_argument& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
    if (const std::string backend = cli.get_string("backend"); !backend.empty()) {
        const auto parsed = dls::inter_backend_from_string(backend);
        if (!parsed) {
            std::cerr << "bad --backend '" << backend << "'\n";
            return 2;
        }
        cfg.inter_backend = *parsed;
    }

    apps::WorkloadSpec spec;
    spec.kind = *kind;
    spec.iterations = static_cast<std::size_t>(cli.get_int("iterations"));
    spec.mean_seconds = cli.get_double("mean-us") * 1e-6;
    spec.cov = cli.get_double("cov");
    const std::vector<double> costs = apps::make_workload(spec);

    core::ClusterShape shape{static_cast<int>(cli.get_int("nodes")),
                             static_cast<int>(cli.get_int("wpn"))};
    if (!cfg.topology.empty()) {
        // An explicit tree defines the shape: leaf fan-out x leaf groups.
        shape = core::shape_from_topology(cfg.topology);
    }
    const auto n = static_cast<std::int64_t>(costs.size());

    std::cerr << "tracing " << core::approach_name(*approach) << " "
              << core::format_schedule(cfg) << " on " << shape.nodes << "x"
              << shape.workers_per_node << ", N=" << n << " ...\n";

    const core::ExecutionReport report =
        parallel_for(shape, *approach, cfg, n, [&](std::int64_t b, std::int64_t e) {
            for (std::int64_t i = b; i < e; ++i) {
                burn(costs[static_cast<std::size_t>(i)]);
            }
        });
    report.print(std::cerr);

    if (!report.trace) {
        std::cerr << "tracing disabled (HDLS_TRACE=0): nothing to export\n";
        return 0;
    }

    std::ostream& os = out.empty() ? std::cout : file;

    if (format == "chrome") {
        trace::export_chrome_json(*report.trace, os);
    } else if (format == "csv") {
        trace::export_csv(*report.trace, os);
    } else {
        trace::ascii_gantt(*report.trace, os, 100);
    }
    if (!out.empty()) {
        std::cerr << "wrote " << report.trace->events.size() << " events to " << out << "\n";
    }

    // The paper's diagnostics, derived from the same events.
    trace::analyze(*report.trace).print(std::cerr);
    return 0;
}
