#!/usr/bin/env python3
"""Check every markdown link in README.md and docs/ resolves.

Covers relative file links (the target must exist), intra-repo anchors
(`file.md#section` / `#section` — the heading must exist in the target,
GitHub slugification) and flags absolute filesystem links. External
http(s)/mailto links are not fetched.

Exit 0 when every link resolves, 1 with one line per broken link.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
PAGES = [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))

# [text](target) — target captured up to the closing paren; images too.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# Fenced code blocks must not contribute links (JSON snippets etc.).
FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slugification: lowercase, drop punctuation, dashes."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
    return slug.replace(" ", "-")


def headings_of(path: Path) -> set[str]:
    slugs: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence and line.startswith("#"):
            slugs.add(github_slug(line.lstrip("#")))
    return slugs


def links_of(path: Path):
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            yield lineno, m.group(1)


def main() -> int:
    errors = []
    checked = 0
    for page in PAGES:
        for lineno, target in links_of(page):
            checked += 1
            where = f"{page.relative_to(REPO)}:{lineno}"
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("/"):
                errors.append(f"{where}: absolute link {target!r} will break "
                              "outside this checkout")
                continue
            file_part, _, anchor = target.partition("#")
            dest = page if not file_part else (page.parent / file_part).resolve()
            if not dest.exists():
                errors.append(f"{where}: target {file_part!r} does not exist")
                continue
            if anchor and dest.suffix == ".md":
                if anchor not in headings_of(dest):
                    errors.append(f"{where}: no heading for anchor "
                                  f"#{anchor} in {dest.relative_to(REPO)}")

    for err in errors:
        print(f"ERROR: {err}")
    if errors:
        return 1
    print(f"link check ok: {checked} links across {len(PAGES)} pages")
    return 0


if __name__ == "__main__":
    sys.exit(main())
