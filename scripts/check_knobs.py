#!/usr/bin/env python3
"""Fail on drift between the HDLS_* knobs in the source tree and docs/knobs.md.

Source side: every quoted "HDLS_..." string in src/, bench/, examples/ and
tests/ (the form every getenv() call and env_config reader uses).
Doc side: every knob row in docs/knobs.md's reference table.

Exit 0 when the two sets match, 1 with a per-knob diagnosis otherwise.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SOURCE_DIRS = ["src", "bench", "examples", "tests"]
SOURCE_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".c"}
KNOBS_DOC = REPO / "docs" / "knobs.md"


def knobs_in_source() -> set[str]:
    knobs: set[str] = set()
    for dirname in SOURCE_DIRS:
        for path in (REPO / dirname).rglob("*"):
            if path.suffix not in SOURCE_SUFFIXES:
                continue
            text = path.read_text(encoding="utf-8", errors="replace")
            knobs.update(re.findall(r'"(HDLS_[A-Z0-9_]+)"', text))
    return knobs


def knobs_in_doc() -> set[str]:
    knobs: set[str] = set()
    for line in KNOBS_DOC.read_text(encoding="utf-8").splitlines():
        # Table rows only: | `HDLS_FOO` | ... |  (prose mentions don't count
        # as documentation of a knob).
        m = re.match(r"\|\s*`(HDLS_[A-Z0-9_]+)`\s*\|", line)
        if m:
            knobs.add(m.group(1))
    return knobs


def main() -> int:
    in_source = knobs_in_source()
    in_doc = knobs_in_doc()

    undocumented = sorted(in_source - in_doc)
    stale = sorted(in_doc - in_source)

    for knob in undocumented:
        print(f"ERROR: {knob} is used in the source tree but has no row in "
              f"{KNOBS_DOC.relative_to(REPO)}")
    for knob in stale:
        print(f"ERROR: {knob} has a row in {KNOBS_DOC.relative_to(REPO)} but "
              f"no source reference (stale doc?)")

    if undocumented or stale:
        return 1
    print(f"knob check ok: {len(in_source)} knobs, source and "
          f"{KNOBS_DOC.relative_to(REPO)} agree")
    return 0


if __name__ == "__main__":
    sys.exit(main())
