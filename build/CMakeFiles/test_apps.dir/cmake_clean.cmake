file(REMOVE_RECURSE
  "CMakeFiles/test_apps.dir/tests/test_apps.cpp.o"
  "CMakeFiles/test_apps.dir/tests/test_apps.cpp.o.d"
  "test_apps"
  "test_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
