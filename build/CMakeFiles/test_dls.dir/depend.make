# Empty dependencies file for test_dls.
# This may be replaced when dependencies are built.
