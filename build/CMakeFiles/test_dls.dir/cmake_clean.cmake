file(REMOVE_RECURSE
  "CMakeFiles/test_dls.dir/tests/test_dls.cpp.o"
  "CMakeFiles/test_dls.dir/tests/test_dls.cpp.o.d"
  "test_dls"
  "test_dls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
