# Empty dependencies file for bench_micro_queue_primitives.
# This may be replaced when dependencies are built.
