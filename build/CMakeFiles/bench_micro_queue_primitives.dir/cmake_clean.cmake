file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_queue_primitives.dir/bench/bench_micro_queue_primitives.cpp.o"
  "CMakeFiles/bench_micro_queue_primitives.dir/bench/bench_micro_queue_primitives.cpp.o.d"
  "bench_micro_queue_primitives"
  "bench_micro_queue_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_queue_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
