file(REMOVE_RECURSE
  "CMakeFiles/bench_fig23_timeline_illustration.dir/bench/bench_fig23_timeline_illustration.cpp.o"
  "CMakeFiles/bench_fig23_timeline_illustration.dir/bench/bench_fig23_timeline_illustration.cpp.o.d"
  "bench_fig23_timeline_illustration"
  "bench_fig23_timeline_illustration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_timeline_illustration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
