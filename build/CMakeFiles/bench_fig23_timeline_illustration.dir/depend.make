# Empty dependencies file for bench_fig23_timeline_illustration.
# This may be replaced when dependencies are built.
