# Empty dependencies file for bench_micro_chunk_calc.
# This may be replaced when dependencies are built.
