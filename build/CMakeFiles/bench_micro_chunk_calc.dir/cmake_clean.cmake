file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_chunk_calc.dir/bench/bench_micro_chunk_calc.cpp.o"
  "CMakeFiles/bench_micro_chunk_calc.dir/bench/bench_micro_chunk_calc.cpp.o.d"
  "bench_micro_chunk_calc"
  "bench_micro_chunk_calc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_chunk_calc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
