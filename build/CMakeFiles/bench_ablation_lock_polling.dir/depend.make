# Empty dependencies file for bench_ablation_lock_polling.
# This may be replaced when dependencies are built.
