file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lock_polling.dir/bench/bench_ablation_lock_polling.cpp.o"
  "CMakeFiles/bench_ablation_lock_polling.dir/bench/bench_ablation_lock_polling.cpp.o.d"
  "bench_ablation_lock_polling"
  "bench_ablation_lock_polling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lock_polling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
