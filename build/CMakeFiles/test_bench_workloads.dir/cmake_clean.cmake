file(REMOVE_RECURSE
  "CMakeFiles/test_bench_workloads.dir/tests/test_bench_workloads.cpp.o"
  "CMakeFiles/test_bench_workloads.dir/tests/test_bench_workloads.cpp.o.d"
  "test_bench_workloads"
  "test_bench_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bench_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
