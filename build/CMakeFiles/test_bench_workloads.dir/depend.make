# Empty dependencies file for test_bench_workloads.
# This may be replaced when dependencies are built.
