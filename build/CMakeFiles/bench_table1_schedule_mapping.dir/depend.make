# Empty dependencies file for bench_table1_schedule_mapping.
# This may be replaced when dependencies are built.
