file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_schedule_mapping.dir/bench/bench_table1_schedule_mapping.cpp.o"
  "CMakeFiles/bench_table1_schedule_mapping.dir/bench/bench_table1_schedule_mapping.cpp.o.d"
  "bench_table1_schedule_mapping"
  "bench_table1_schedule_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_schedule_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
