file(REMOVE_RECURSE
  "CMakeFiles/cluster_sim_explorer.dir/examples/cluster_sim_explorer.cpp.o"
  "CMakeFiles/cluster_sim_explorer.dir/examples/cluster_sim_explorer.cpp.o.d"
  "cluster_sim_explorer"
  "cluster_sim_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_sim_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
