# Empty dependencies file for cluster_sim_explorer.
# This may be replaced when dependencies are built.
