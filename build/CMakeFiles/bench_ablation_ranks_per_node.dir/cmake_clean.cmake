file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ranks_per_node.dir/bench/bench_ablation_ranks_per_node.cpp.o"
  "CMakeFiles/bench_ablation_ranks_per_node.dir/bench/bench_ablation_ranks_per_node.cpp.o.d"
  "bench_ablation_ranks_per_node"
  "bench_ablation_ranks_per_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ranks_per_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
