# Empty dependencies file for bench_ablation_ranks_per_node.
# This may be replaced when dependencies are built.
