file(REMOVE_RECURSE
  "CMakeFiles/mandelbrot_render.dir/examples/mandelbrot_render.cpp.o"
  "CMakeFiles/mandelbrot_render.dir/examples/mandelbrot_render.cpp.o.d"
  "mandelbrot_render"
  "mandelbrot_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mandelbrot_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
