# Empty dependencies file for mandelbrot_render.
# This may be replaced when dependencies are built.
