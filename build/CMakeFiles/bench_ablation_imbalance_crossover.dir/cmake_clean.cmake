file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_imbalance_crossover.dir/bench/bench_ablation_imbalance_crossover.cpp.o"
  "CMakeFiles/bench_ablation_imbalance_crossover.dir/bench/bench_ablation_imbalance_crossover.cpp.o.d"
  "bench_ablation_imbalance_crossover"
  "bench_ablation_imbalance_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_imbalance_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
