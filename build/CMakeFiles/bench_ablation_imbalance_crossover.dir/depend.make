# Empty dependencies file for bench_ablation_imbalance_crossover.
# This may be replaced when dependencies are built.
