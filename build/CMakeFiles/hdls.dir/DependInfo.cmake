
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/mandelbrot.cpp" "CMakeFiles/hdls.dir/src/apps/mandelbrot.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/apps/mandelbrot.cpp.o.d"
  "/root/repo/src/apps/psia.cpp" "CMakeFiles/hdls.dir/src/apps/psia.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/apps/psia.cpp.o.d"
  "/root/repo/src/apps/synthetic.cpp" "CMakeFiles/hdls.dir/src/apps/synthetic.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/apps/synthetic.cpp.o.d"
  "/root/repo/src/core/env_config.cpp" "CMakeFiles/hdls.dir/src/core/env_config.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/core/env_config.cpp.o.d"
  "/root/repo/src/core/hybrid_executor.cpp" "CMakeFiles/hdls.dir/src/core/hybrid_executor.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/core/hybrid_executor.cpp.o.d"
  "/root/repo/src/core/mpi_mpi_executor.cpp" "CMakeFiles/hdls.dir/src/core/mpi_mpi_executor.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/core/mpi_mpi_executor.cpp.o.d"
  "/root/repo/src/core/report.cpp" "CMakeFiles/hdls.dir/src/core/report.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/core/report.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "CMakeFiles/hdls.dir/src/core/runner.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/core/runner.cpp.o.d"
  "/root/repo/src/dls/chunk_formulas.cpp" "CMakeFiles/hdls.dir/src/dls/chunk_formulas.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/dls/chunk_formulas.cpp.o.d"
  "/root/repo/src/dls/params.cpp" "CMakeFiles/hdls.dir/src/dls/params.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/dls/params.cpp.o.d"
  "/root/repo/src/dls/scheduler.cpp" "CMakeFiles/hdls.dir/src/dls/scheduler.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/dls/scheduler.cpp.o.d"
  "/root/repo/src/dls/scheduler_factoring.cpp" "CMakeFiles/hdls.dir/src/dls/scheduler_factoring.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/dls/scheduler_factoring.cpp.o.d"
  "/root/repo/src/dls/scheduler_simple.cpp" "CMakeFiles/hdls.dir/src/dls/scheduler_simple.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/dls/scheduler_simple.cpp.o.d"
  "/root/repo/src/dls/scheduler_weighted.cpp" "CMakeFiles/hdls.dir/src/dls/scheduler_weighted.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/dls/scheduler_weighted.cpp.o.d"
  "/root/repo/src/dls/technique.cpp" "CMakeFiles/hdls.dir/src/dls/technique.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/dls/technique.cpp.o.d"
  "/root/repo/src/minimpi/comm.cpp" "CMakeFiles/hdls.dir/src/minimpi/comm.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/minimpi/comm.cpp.o.d"
  "/root/repo/src/minimpi/mpi_compat.cpp" "CMakeFiles/hdls.dir/src/minimpi/mpi_compat.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/minimpi/mpi_compat.cpp.o.d"
  "/root/repo/src/minimpi/runtime.cpp" "CMakeFiles/hdls.dir/src/minimpi/runtime.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/minimpi/runtime.cpp.o.d"
  "/root/repo/src/minimpi/window.cpp" "CMakeFiles/hdls.dir/src/minimpi/window.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/minimpi/window.cpp.o.d"
  "/root/repo/src/ompsim/schedule.cpp" "CMakeFiles/hdls.dir/src/ompsim/schedule.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/ompsim/schedule.cpp.o.d"
  "/root/repo/src/ompsim/team.cpp" "CMakeFiles/hdls.dir/src/ompsim/team.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/ompsim/team.cpp.o.d"
  "/root/repo/src/sim/engine_hybrid.cpp" "CMakeFiles/hdls.dir/src/sim/engine_hybrid.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/sim/engine_hybrid.cpp.o.d"
  "/root/repo/src/sim/engine_shared_queue.cpp" "CMakeFiles/hdls.dir/src/sim/engine_shared_queue.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/sim/engine_shared_queue.cpp.o.d"
  "/root/repo/src/sim/report.cpp" "CMakeFiles/hdls.dir/src/sim/report.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/sim/report.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "CMakeFiles/hdls.dir/src/sim/simulator.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "CMakeFiles/hdls.dir/src/sim/workload.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/sim/workload.cpp.o.d"
  "/root/repo/src/trace/analysis.cpp" "CMakeFiles/hdls.dir/src/trace/analysis.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/trace/analysis.cpp.o.d"
  "/root/repo/src/trace/export.cpp" "CMakeFiles/hdls.dir/src/trace/export.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/trace/export.cpp.o.d"
  "/root/repo/src/trace/recorder.cpp" "CMakeFiles/hdls.dir/src/trace/recorder.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/trace/recorder.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "CMakeFiles/hdls.dir/src/trace/trace.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/trace/trace.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "CMakeFiles/hdls.dir/src/util/cli.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/util/cli.cpp.o.d"
  "/root/repo/src/util/log.cpp" "CMakeFiles/hdls.dir/src/util/log.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/hdls.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/hdls.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/hdls.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/hdls.dir/src/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
