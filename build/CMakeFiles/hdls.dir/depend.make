# Empty dependencies file for hdls.
# This may be replaced when dependencies are built.
