file(REMOVE_RECURSE
  "libhdls.a"
)
