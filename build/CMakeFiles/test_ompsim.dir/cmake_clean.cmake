file(REMOVE_RECURSE
  "CMakeFiles/test_ompsim.dir/tests/test_ompsim.cpp.o"
  "CMakeFiles/test_ompsim.dir/tests/test_ompsim.cpp.o.d"
  "test_ompsim"
  "test_ompsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ompsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
