# Empty dependencies file for test_ompsim.
# This may be replaced when dependencies are built.
