file(REMOVE_RECURSE
  "CMakeFiles/test_mpi_compat.dir/tests/test_mpi_compat.cpp.o"
  "CMakeFiles/test_mpi_compat.dir/tests/test_mpi_compat.cpp.o.d"
  "test_mpi_compat"
  "test_mpi_compat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi_compat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
