# Empty dependencies file for test_mpi_compat.
# This may be replaced when dependencies are built.
