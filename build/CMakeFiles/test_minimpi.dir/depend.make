# Empty dependencies file for test_minimpi.
# This may be replaced when dependencies are built.
