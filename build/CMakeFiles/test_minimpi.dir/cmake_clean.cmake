file(REMOVE_RECURSE
  "CMakeFiles/test_minimpi.dir/tests/test_minimpi.cpp.o"
  "CMakeFiles/test_minimpi.dir/tests/test_minimpi.cpp.o.d"
  "test_minimpi"
  "test_minimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
