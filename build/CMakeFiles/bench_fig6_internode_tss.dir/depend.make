# Empty dependencies file for bench_fig6_internode_tss.
# This may be replaced when dependencies are built.
