file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_internode_tss.dir/bench/bench_fig6_internode_tss.cpp.o"
  "CMakeFiles/bench_fig6_internode_tss.dir/bench/bench_fig6_internode_tss.cpp.o.d"
  "bench_fig6_internode_tss"
  "bench_fig6_internode_tss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_internode_tss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
