file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_internode_static.dir/bench/bench_fig4_internode_static.cpp.o"
  "CMakeFiles/bench_fig4_internode_static.dir/bench/bench_fig4_internode_static.cpp.o.d"
  "bench_fig4_internode_static"
  "bench_fig4_internode_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_internode_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
