# Empty dependencies file for bench_fig4_internode_static.
# This may be replaced when dependencies are built.
