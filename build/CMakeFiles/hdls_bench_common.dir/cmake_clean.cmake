file(REMOVE_RECURSE
  "CMakeFiles/hdls_bench_common.dir/bench/common/figure.cpp.o"
  "CMakeFiles/hdls_bench_common.dir/bench/common/figure.cpp.o.d"
  "CMakeFiles/hdls_bench_common.dir/bench/common/workloads.cpp.o"
  "CMakeFiles/hdls_bench_common.dir/bench/common/workloads.cpp.o.d"
  "libhdls_bench_common.a"
  "libhdls_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdls_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
