file(REMOVE_RECURSE
  "libhdls_bench_common.a"
)
