# Empty dependencies file for hdls_bench_common.
# This may be replaced when dependencies are built.
