file(REMOVE_RECURSE
  "CMakeFiles/psia_spinimages.dir/examples/psia_spinimages.cpp.o"
  "CMakeFiles/psia_spinimages.dir/examples/psia_spinimages.cpp.o.d"
  "psia_spinimages"
  "psia_spinimages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psia_spinimages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
