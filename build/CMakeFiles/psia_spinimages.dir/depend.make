# Empty dependencies file for psia_spinimages.
# This may be replaced when dependencies are built.
