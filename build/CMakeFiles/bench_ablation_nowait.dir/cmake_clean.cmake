file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nowait.dir/bench/bench_ablation_nowait.cpp.o"
  "CMakeFiles/bench_ablation_nowait.dir/bench/bench_ablation_nowait.cpp.o.d"
  "bench_ablation_nowait"
  "bench_ablation_nowait.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nowait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
