# Empty dependencies file for bench_ablation_nowait.
# This may be replaced when dependencies are built.
