# Empty dependencies file for bench_fig7_internode_fac2.
# This may be replaced when dependencies are built.
