file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_internode_gss.dir/bench/bench_fig5_internode_gss.cpp.o"
  "CMakeFiles/bench_fig5_internode_gss.dir/bench/bench_fig5_internode_gss.cpp.o.d"
  "bench_fig5_internode_gss"
  "bench_fig5_internode_gss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_internode_gss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
