# Empty dependencies file for bench_fig5_internode_gss.
# This may be replaced when dependencies are built.
