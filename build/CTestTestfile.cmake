# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[test_apps]=] "/root/repo/build/test_apps")
set_tests_properties([=[test_apps]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;81;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[test_bench_workloads]=] "/root/repo/build/test_bench_workloads")
set_tests_properties([=[test_bench_workloads]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;81;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[test_core]=] "/root/repo/build/test_core")
set_tests_properties([=[test_core]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;81;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[test_dls]=] "/root/repo/build/test_dls")
set_tests_properties([=[test_dls]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;81;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[test_integration]=] "/root/repo/build/test_integration")
set_tests_properties([=[test_integration]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;81;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[test_minimpi]=] "/root/repo/build/test_minimpi")
set_tests_properties([=[test_minimpi]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;81;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[test_mpi_compat]=] "/root/repo/build/test_mpi_compat")
set_tests_properties([=[test_mpi_compat]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;81;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[test_ompsim]=] "/root/repo/build/test_ompsim")
set_tests_properties([=[test_ompsim]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;81;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[test_sim]=] "/root/repo/build/test_sim")
set_tests_properties([=[test_sim]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;81;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[test_trace]=] "/root/repo/build/test_trace")
set_tests_properties([=[test_trace]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;81;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[test_util]=] "/root/repo/build/test_util")
set_tests_properties([=[test_util]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;81;add_test;/root/repo/CMakeLists.txt;0;")
