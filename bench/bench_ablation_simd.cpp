/// \file bench_ablation_simd.cpp
/// Ablation: vectorized chunk execution vs. the scalar reference kernels,
/// with intra-chunk software prefetch and thread pinning layered on top.
///
/// Unlike the simulator-driven ablations, this bench executes the *real*
/// application kernels (src/simd/) on the host CPU and reports measured
/// throughput per technique:
///
///   mandelbrot — pixels/s of the escape-time batch kernel:
///                scalar vs vector vs vector+pin;
///   psia       — candidate points/s of the spin-image support filter:
///                scalar vs vector vs vector+prefetch vs
///                vector+prefetch+pin;
///   awf        — the honesty loop: per-backend probed rates turned into
///                dls::awf_weights feedback for a cluster where one node
///                is stuck on the scalar backend — AWF-B's weights must
///                shift toward the vectorized nodes.
///
/// Every variant of one workload must produce a bit-identical checksum
/// (the kernels share per-lane operation order and FMA is disabled); a
/// mismatch is a correctness bug and the bench exits nonzero so CI's
/// perf-smoke job fails loudly.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "apps/mandelbrot.hpp"
#include "apps/psia.hpp"
#include "common/json_report.hpp"
#include "dls/adaptive.hpp"
#include "minimpi/host_topology.hpp"
#include "simd/dispatch.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using hdls::util::format_double;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One execution technique of the sweep.
struct Variant {
    std::string name;
    hdls::simd::SimdMode mode = hdls::simd::SimdMode::ForceScalar;
    bool prefetch = false;  ///< PSIA gather prefetch (mandelbrot ignores it)
    bool pin = false;       ///< pin the calling thread to the plan's CPU 0
};

/// Pins the calling thread for a variant and restores afterwards (RAII so
/// checksum-mismatch exits do not leave the shell's affinity mangled).
class ScopedPin {
public:
    ScopedPin(bool enable, const minimpi::HostTopology& host) {
        if (!enable) {
            return;
        }
        saved_ = minimpi::current_thread_affinity();
        const std::vector<int> plan =
            host.plan(minimpi::PinPolicy::Compact, /*first_worker=*/0, /*count=*/1);
        if (!plan.empty()) {
            minimpi::pin_current_thread(plan.front());
        }
    }
    ~ScopedPin() {
        if (!saved_.empty()) {
            minimpi::set_current_thread_affinity(saved_);
        }
    }
    ScopedPin(const ScopedPin&) = delete;
    ScopedPin& operator=(const ScopedPin&) = delete;

private:
    std::vector<int> saved_;
};

[[nodiscard]] std::uint64_t spin_image_checksum(const hdls::apps::SpinImage& image,
                                                std::uint64_t salt) {
    std::uint64_t sum = 0;
    std::uint64_t idx = 0;
    for (const float v : image.data()) {
        std::uint32_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        sum ^= hdls::util::mix64((salt << 40) ^ (idx++ << 24) ^ bits);
    }
    return sum;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace hdls;
    util::ArgParser cli("bench_ablation_simd",
                        "Measured kernel throughput: scalar vs vector vs "
                        "vector+prefetch vs vector+pin, plus the AWF-B "
                        "weight shift when one node is stuck on scalar");
    cli.add_flag("csv", "emit CSV instead of aligned text tables");
    cli.add_double("scale", 1.0, "workload scale in (0,1]");
    cli.add_int("reps", 3, "timed repetitions per variant");
    cli.add_int("awf_nodes", 4, "node count of the AWF weight-shift demo");
    bench::add_json_option(cli);
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }

    const double scale = std::clamp(cli.get_double("scale"), 1e-3, 1.0);
    const int reps = std::max(1, static_cast<int>(cli.get_int("reps")));
    const int awf_nodes = std::max(2, static_cast<int>(cli.get_int("awf_nodes")));

    const simd::Backend best = simd::best_backend();
    const bool has_vector = best != simd::Backend::Scalar;
    const minimpi::HostTopology host = minimpi::HostTopology::detect();

    std::vector<Variant> mandel_variants;
    mandel_variants.push_back({"scalar", simd::SimdMode::ForceScalar, false, false});
    if (has_vector) {
        mandel_variants.push_back({"vector", simd::SimdMode::Native, false, false});
        mandel_variants.push_back({"vector+pin", simd::SimdMode::Native, false, true});
    }
    std::vector<Variant> psia_variants;
    psia_variants.push_back({"scalar", simd::SimdMode::ForceScalar, false, false});
    if (has_vector) {
        psia_variants.push_back({"vector", simd::SimdMode::Native, false, false});
        psia_variants.push_back({"vector+prefetch", simd::SimdMode::Native, true, false});
        psia_variants.push_back(
            {"vector+prefetch+pin", simd::SimdMode::Native, true, true});
    }

    bench::JsonReport json("bench_ablation_simd");
    json.add_param("scale", scale);
    json.add_param("reps", static_cast<std::int64_t>(reps));
    json.add_param("best_backend", std::string(simd::backend_name(best)));
    json.add_param("sockets", static_cast<std::int64_t>(host.sockets().size()));
    json.add_param("cpus", static_cast<std::int64_t>(host.total_cpus()));

    bool checksums_ok = true;

    // --- mandelbrot: pixels/s of the escape-time batch kernel -------------
    apps::MandelbrotConfig mcfg;
    mcfg.width = std::max(64, static_cast<int>(std::lround(512.0 * std::sqrt(scale))));
    mcfg.height = mcfg.width;
    mcfg.max_iter = 256;
    const std::int64_t pixels = mcfg.pixels();

    util::TextTable mandel_table(
        {"variant", "backend", "pixels/s", "speedup", "checksum"});
    std::uint64_t mandel_reference = 0;
    double mandel_scalar_rate = 0.0;
    for (const Variant& v : mandel_variants) {
        simd::set_mode(v.mode);
        const ScopedPin pin(v.pin, host);
        double best_rate = 0.0;
        std::uint64_t sum = 0;
        for (int rep = 0; rep < reps; ++rep) {
            apps::MandelbrotImage image(mcfg);
            const Clock::time_point t0 = Clock::now();
            image.compute_range(0, pixels);
            const double elapsed = seconds_since(t0);
            best_rate = std::max(best_rate, static_cast<double>(pixels) / elapsed);
            sum = image.checksum();
            json.point()
                .label("section", "mandelbrot")
                .label("variant", v.name)
                .label("backend", std::string(simd::backend_name(simd::active_backend())))
                .sample("pixels_per_s", static_cast<double>(pixels) / elapsed);
        }
        if (v.name == "scalar") {
            mandel_reference = sum;
            mandel_scalar_rate = best_rate;
        } else if (sum != mandel_reference) {
            checksums_ok = false;
        }
        mandel_table.add_row(
            {v.name, std::string(simd::backend_name(simd::active_backend())),
             format_double(best_rate / 1e6, 2) + "M",
             format_double(best_rate / mandel_scalar_rate, 2) + "x",
             sum == mandel_reference ? "ok" : "MISMATCH"});
    }

    // --- psia: candidate points/s of the spin-image support filter --------
    const auto cloud_points =
        static_cast<std::size_t>(std::max(4096.0, 20000.0 * scale));
    const apps::PointCloud cloud = apps::PointCloud::synthetic(cloud_points, 42);
    apps::PsiaConfig pcfg;
    pcfg.support_angle_cos = 0.0;  // engage the angle filter lane too
    const std::size_t centers = std::min<std::size_t>(64, cloud.size());
    const std::size_t center_stride = std::max<std::size_t>(1, cloud.size() / centers);

    util::TextTable psia_table(
        {"variant", "backend", "points/s", "speedup", "checksum"});
    std::uint64_t psia_reference = 0;
    double psia_scalar_rate = 0.0;
    for (const Variant& v : psia_variants) {
        simd::set_mode(v.mode);
        const ScopedPin pin(v.pin, host);
        double best_rate = 0.0;
        std::uint64_t sum = 0;
        for (int rep = 0; rep < reps; ++rep) {
            sum = 0;
            const Clock::time_point t0 = Clock::now();
            std::size_t done = 0;
            for (std::size_t c = 0; c < cloud.size(); c += center_stride) {
                const apps::SpinImage image =
                    apps::compute_spin_image(cloud, c, pcfg, v.prefetch);
                sum ^= spin_image_checksum(image, c);
                ++done;
            }
            const double elapsed = seconds_since(t0);
            const double tested = static_cast<double>(done * cloud.size());
            best_rate = std::max(best_rate, tested / elapsed);
            json.point()
                .label("section", "psia")
                .label("variant", v.name)
                .label("backend", std::string(simd::backend_name(simd::active_backend())))
                .sample("points_per_s", tested / elapsed);
        }
        if (v.name == "scalar") {
            psia_reference = sum;
            psia_scalar_rate = best_rate;
        } else if (sum != psia_reference) {
            checksums_ok = false;
        }
        psia_table.add_row(
            {v.name, std::string(simd::backend_name(simd::active_backend())),
             format_double(best_rate / 1e6, 2) + "M",
             format_double(best_rate / psia_scalar_rate, 2) + "x",
             sum == psia_reference ? "ok" : "MISMATCH"});
    }
    simd::set_mode(simd::SimdMode::Auto);

    // --- awf: probed rates -> AWF-B weights, one node stuck on scalar -----
    // The honesty loop of the runner in miniature: measure what each
    // placement can actually sustain and hand the rates to the adaptive
    // weighting. Node 0 reports the scalar rate, every other node the best
    // backend's rate, over the same one-second virtual window.
    const double rate_scalar =
        simd::probe_mandelbrot_rate(simd::Backend::Scalar, 0.01);
    const double rate_best = simd::probe_mandelbrot_rate(best, 0.01);
    std::vector<dls::NodeFeedback> feedback(static_cast<std::size_t>(awf_nodes));
    for (std::size_t node = 0; node < feedback.size(); ++node) {
        const double rate = node == 0 ? rate_scalar : rate_best;
        feedback[node].iterations = std::max<std::int64_t>(1, std::llround(rate));
        feedback[node].compute_seconds = 1.0;
    }
    const std::vector<double> weights =
        dls::awf_weights(dls::Technique::AWFB, feedback);

    util::TextTable awf_table({"node", "backend", "probed rate (Mpix/s)", "AWF-B weight"});
    for (std::size_t node = 0; node < weights.size(); ++node) {
        const bool scalar_node = node == 0;
        awf_table.add_row(
            {std::to_string(node),
             std::string(simd::backend_name(scalar_node ? simd::Backend::Scalar : best)),
             format_double((scalar_node ? rate_scalar : rate_best) / 1e6, 2),
             format_double(weights[node], 4)});
        json.point()
            .label("section", "awf")
            .label("node", static_cast<std::int64_t>(node))
            .label("backend",
                   std::string(simd::backend_name(scalar_node ? simd::Backend::Scalar : best)))
            .sample("awf_b_weight", weights[node]);
    }

    std::cout << "SIMD/kernel ablation (measured on this host; best backend: "
              << simd::backend_name(best) << ", " << host.sockets().size()
              << " socket(s) x " << host.total_cpus() << " cpus)\n\n"
              << "Mandelbrot " << mcfg.width << "x" << mcfg.height
              << " (max_iter=" << mcfg.max_iter << "):\n";
    const bool csv = cli.get_flag("csv");
    auto print = [&](util::TextTable& t) { csv ? t.print_csv(std::cout) : t.print(std::cout); };
    print(mandel_table);
    std::cout << "\nPSIA support filter (" << cloud.size() << " points, " << centers
              << " centers):\n";
    print(psia_table);
    std::cout << "\nAWF-B weights, node 0 forced scalar (" << awf_nodes << " nodes):\n";
    print(awf_table);
    if (!has_vector) {
        std::cout << "\n(no vector backend usable on this host: scalar-only sweep)\n";
    }
    std::cout << "\nExpected: the vector variants multiply pixel/point throughput by\n"
                 "roughly the lane width; prefetch adds on top once the cloud\n"
                 "outgrows the caches; checksums are identical everywhere; and\n"
                 "AWF-B's weight for the scalar node drops below 1 while the\n"
                 "vectorized nodes rise above it.\n";
    if (!checksums_ok) {
        std::cerr << "FAIL: backend checksum mismatch (see tables above)\n";
    }
    try {
        bench::maybe_write_json(cli, json);
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
    return checksums_ok ? 0 : 1;
}
