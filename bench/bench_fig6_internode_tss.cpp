/// \file bench_fig6_internode_tss.cpp
/// Regenerates Figure 6: TSS at the inter-node level; same qualitative
/// pattern as Figure 5.

#include "common/figure.hpp"

int main(int argc, char** argv) {
    return hdls::bench::run_figure_bench(6, hdls::dls::Technique::TSS, argc, argv);
}
