/// \file bench_ablation_ranks_per_node.cpp
/// Ablation: contention scaling with the ranks-per-node count (miniHPC's
/// Xeon nodes have 16 cores; its Xeon Phi nodes 64). The node-local lock
/// is the MPI+MPI approach's scaling bottleneck: the SS penalty grows with
/// ranks per node while coarse intra techniques stay flat.

#include <iostream>

#include "common/json_report.hpp"
#include "common/workloads.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace hdls;
    util::ArgParser cli("bench_ablation_ranks_per_node",
                        "MPI+MPI SS/GSS penalty vs ranks per node (Xeon 16 .. Xeon Phi 64)");
    bench::add_common_options(cli);
    bench::add_json_option(cli);
    cli.add_int("nodes", 2, "node count");
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
    const int nodes = static_cast<int>(cli.get_int("nodes"));
    const sim::WorkloadTrace trace =
        bench::psia_paper_trace(bench::scaled_psia_points(cli) / 4);

    bench::JsonReport json("bench_ablation_ranks_per_node");
    json.add_param("scale", cli.get_double("scale"));
    json.add_param("nodes", static_cast<std::int64_t>(nodes));

    util::TextTable table({"ranks/node", "intra", "MPI+MPI (s)", "MPI+OpenMP (s)", "ratio"});
    for (const int rpn : {2, 4, 8, 16, 32, 64}) {
        for (const dls::Technique intra : {dls::Technique::SS, dls::Technique::GSS}) {
            sim::ClusterSpec cluster = bench::cluster_from_options(cli, nodes);
            cluster.workers_per_node = rpn;
            sim::SimConfig cfg;
            cfg.inter = dls::Technique::GSS;
            cfg.intra = intra;
            const auto mm = simulate(sim::ExecModel::MpiMpi, cluster, cfg, trace);
            const auto hy = simulate(sim::ExecModel::MpiOpenMp, cluster, cfg, trace);
            table.add_row({std::to_string(rpn), std::string(dls::technique_name(intra)),
                           util::format_double(mm.parallel_time, 3),
                           util::format_double(hy.parallel_time, 3),
                           util::format_double(mm.parallel_time / hy.parallel_time, 2)});
            json.point()
                .label("rpn", static_cast<std::int64_t>(rpn))
                .label("intra", std::string(dls::technique_name(intra)))
                .sample("mpimpi_s", mm.parallel_time)
                .sample("openmp_s", hy.parallel_time)
                .sample("ratio", mm.parallel_time / hy.parallel_time);
        }
    }
    std::cout << "Ranks-per-node ablation (PSIA workload, GSS inter, " << nodes << " nodes):\n";
    if (cli.get_flag("csv")) {
        table.print_csv(std::cout);
    } else {
        table.print(std::cout);
    }
    std::cout << "\nExpected: the SS ratio degrades with ranks/node (lock-attempt storms\n"
                 "scale with contenders) while GSS stays near 1 — the paper's conclusion\n"
                 "that MPI+MPI is recommended only when its lock overhead stays below the\n"
                 "OpenMP synchronization overhead it removes.\n";
    try {
        bench::maybe_write_json(cli, json);
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
    return 0;
}
