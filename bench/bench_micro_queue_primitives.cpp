/// \file bench_micro_queue_primitives.cpp
/// google-benchmark micro-measurements of the queue primitives whose cost
/// ordering drives the paper's result: the OpenMP-style atomic dequeue vs
/// the MPI-style locked window access (and the real minimpi window path).
/// These are *host* costs — the simulator's CostModel adds the MPI
/// software-path constants on top — but the ordering (atomic << lock)
/// and the contention trend are the properties the model relies on.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <shared_mutex>

#include "minimpi/minimpi.hpp"

namespace {

/// OpenMP schedule(dynamic) analogue: one atomic fetch-add per dequeue.
void BM_OmpStyleAtomicDequeue(benchmark::State& state) {
    static std::atomic<std::int64_t> counter{0};
    if (state.thread_index() == 0) {
        counter.store(0);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(counter.fetch_add(1, std::memory_order_acq_rel));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OmpStyleAtomicDequeue)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

/// MPI_Win_lock-style access: exclusive lock epoch around a read-modify-
/// write of the queue state (what NodeWorkQueue::try_pop does per
/// sub-chunk under the MPI+MPI approach).
void BM_MpiStyleLockedQueueAccess(benchmark::State& state) {
    static std::shared_mutex window_lock;
    static std::int64_t queue_state[4] = {0, 0, 0, 0};
    for (auto _ : state) {
        window_lock.lock();
        queue_state[0] += 1;  // sub_step
        queue_state[1] += 7;  // sub_scheduled
        benchmark::DoNotOptimize(queue_state[1]);
        window_lock.unlock();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MpiStyleLockedQueueAccess)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

/// The real minimpi path: window fetch_and_op hammered by `ranks` rank
/// threads. Measured with manual timing because each benchmark iteration
/// launches a whole runtime (amortized over kOpsPerRank window ops).
void BM_MinimpiWindowFetchOp(benchmark::State& state) {
    const int ranks = static_cast<int>(state.range(0));
    constexpr std::int64_t kOpsPerRank = 20000;
    for (auto _ : state) {
        using Clock = std::chrono::steady_clock;
        double seconds = 0.0;
        minimpi::Runtime::run(ranks, [&](minimpi::Context& ctx) {
            auto win = minimpi::Window::allocate_shared(
                ctx.world(), ctx.rank() == 0 ? sizeof(std::int64_t) : 0);
            ctx.world().barrier();
            const auto t0 = Clock::now();
            for (std::int64_t i = 0; i < kOpsPerRank; ++i) {
                benchmark::DoNotOptimize(
                    win.fetch_and_op<std::int64_t>(1, 0, 0, minimpi::AccumulateOp::Sum));
            }
            ctx.world().barrier();
            if (ctx.rank() == 0) {
                seconds = std::chrono::duration<double>(Clock::now() - t0).count();
            }
            win.free();
        });
        state.SetIterationTime(seconds);
    }
    state.SetItemsProcessed(state.iterations() * kOpsPerRank * ranks);
}
BENCHMARK(BM_MinimpiWindowFetchOp)->Arg(1)->Arg(4)->Arg(8)->UseManualTime()
    ->Unit(benchmark::kMillisecond);

/// The real minimpi locked-epoch path (lock + update + unlock), as used by
/// NodeWorkQueue, under rank contention.
void BM_MinimpiWindowLockEpoch(benchmark::State& state) {
    const int ranks = static_cast<int>(state.range(0));
    constexpr std::int64_t kOpsPerRank = 5000;
    for (auto _ : state) {
        using Clock = std::chrono::steady_clock;
        double seconds = 0.0;
        minimpi::Runtime::run(ranks, [&](minimpi::Context& ctx) {
            auto win = minimpi::Window::allocate_shared(
                ctx.world(), ctx.rank() == 0 ? 4 * sizeof(std::int64_t) : 0);
            auto cells = win.shared_span<std::int64_t>(0);
            ctx.world().barrier();
            const auto t0 = Clock::now();
            for (std::int64_t i = 0; i < kOpsPerRank; ++i) {
                win.lock(minimpi::LockType::Exclusive, 0);
                cells[0] += 1;
                cells[1] += 7;
                win.unlock(0);
            }
            ctx.world().barrier();
            if (ctx.rank() == 0) {
                seconds = std::chrono::duration<double>(Clock::now() - t0).count();
            }
            win.free();
        });
        state.SetIterationTime(seconds);
    }
    state.SetItemsProcessed(state.iterations() * kOpsPerRank * ranks);
}
BENCHMARK(BM_MinimpiWindowLockEpoch)->Arg(1)->Arg(4)->Arg(8)->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
