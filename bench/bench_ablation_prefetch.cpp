/// \file bench_ablation_prefetch.cpp
/// Ablation: asynchronous chunk prefetching vs. synchronous acquisition as
/// the chunk compute time grows past the RMA latency.
///
/// The synchronous self-scheduling loop pays the full distributed chunk
/// calculation between every two chunks: compute + acquire, serially. With
/// prefetching the next acquisition is issued when a chunk starts
/// executing, so the caller pays issue/completion cost plus only the part
/// of the acquire latency that outlives the chunk — max(compute, latency)
/// instead of the sum. This bench sweeps the per-iteration compute cost of
/// a uniform synthetic loop across the RMA latency (acquisition-heavy
/// SS+STATIC, centralized root: the worst-case per-chunk overhead of the
/// paper) and reports, per cost point and prefetch setting: parallel time,
/// the mean raw acquire latency, the *effective* per-acquire overhead left
/// on the critical path after the prefetch-hidden share, and the hit rate.
///
/// Expected: at sub-latency chunks prefetching only helps partially (the
/// window is too small to hide the acquisition — misses and residual
/// latency remain); once chunk compute exceeds the acquire latency the
/// effective overhead collapses toward the nonblocking issue cost, i.e.
/// toward zero, while the synchronous latency stays put.

#include <iostream>
#include <vector>

#include "common/json_report.hpp"
#include "common/workloads.hpp"
#include "trace/trace.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace hdls;
    util::ArgParser cli("bench_ablation_prefetch",
                        "Asynchronous chunk prefetching vs. synchronous acquisition "
                        "across chunk-compute / RMA-latency ratios");
    bench::add_common_options(cli);
    bench::add_json_option(cli);
    cli.add_int("nodes", 16, "simulated node count");
    cli.add_int("min_chunk", 8, "min chunk size (iterations per acquisition)");
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }

    const int nodes = static_cast<int>(cli.get_int("nodes"));
    const std::int64_t min_chunk = cli.get_int("min_chunk");
    const double scale = cli.get_double("scale");
    // Uniform loop: the sweep variable is the per-iteration cost, so the
    // workload carries no intrinsic imbalance of its own.
    const auto iterations = static_cast<std::int64_t>(
        std::max(4096.0, 262144.0 * scale));

    bench::JsonReport json("bench_ablation_prefetch");
    json.add_param("nodes", static_cast<std::int64_t>(nodes));
    json.add_param("min_chunk", min_chunk);
    json.add_param("iterations", iterations);
    json.add_param("rpn", cli.get_int("rpn"));
    json.add_param("rma_us", cli.get_double("rma_us"));
    json.add_param("schedule", "SS+STATIC");

    util::TextTable table({"cost/iter (us)", "prefetch", "T (s)", "acquire (us)",
                           "effective (us)", "hit rate", "acquires"});
    for (const double cost_us : {1.0, 5.0, 20.0, 100.0}) {
        const sim::WorkloadTrace load(
            std::vector<double>(static_cast<std::size_t>(iterations), cost_us * 1e-6));
        for (const bool prefetch : {false, true}) {
            sim::SimConfig cfg;
            cfg.inter = dls::Technique::SS;  // one acquisition per chunk: max pressure
            cfg.intra = dls::Technique::Static;
            cfg.min_chunk = min_chunk;
            cfg.prefetch = prefetch;
            cfg.trace = true;
            const auto r = simulate(sim::ExecModel::MpiMpi,
                                    bench::cluster_from_options(cli, nodes), cfg, load);
            const bench::AcquireStats acq = bench::acquire_stats(*r.trace);
            const double hits = static_cast<double>(acq.prefetch_hits);
            const double outcomes =
                static_cast<double>(acq.prefetch_hits + acq.prefetch_misses);
            const double hit_rate = outcomes > 0.0 ? hits / outcomes : 0.0;
            table.add_row({util::format_double(cost_us, 1), prefetch ? "on" : "off",
                           util::format_double(r.parallel_time, 4),
                           util::format_double(acq.mean_latency * 1e6, 3),
                           util::format_double(acq.effective_mean_latency * 1e6, 3),
                           prefetch ? util::format_double(hit_rate, 3) : "n/a",
                           std::to_string(acq.acquires)});
            auto& point = json.point();
            point.label("cost_us", util::format_double(cost_us, 1))
                .label("prefetch", prefetch ? "on" : "off")
                .sample("parallel_s", r.parallel_time)
                .sample("acquire_us", acq.mean_latency * 1e6)
                .sample("effective_acquire_us", acq.effective_mean_latency * 1e6)
                .sample("hit_rate", hit_rate)
                .sample("acquires", static_cast<double>(acq.acquires));
        }
    }

    std::cout << "Prefetch ablation (uniform loop, N=" << iterations << ", SS+STATIC, "
              << "min_chunk=" << min_chunk << ", " << nodes << " nodes x "
              << cli.get_int("rpn") << " ranks):\n";
    if (cli.get_flag("csv")) {
        table.print_csv(std::cout);
    } else {
        table.print(std::cout);
    }
    std::cout << "\nExpected: the synchronous acquire latency is flat across the sweep;\n"
                 "with prefetching the effective per-acquire overhead falls as the\n"
                 "chunk compute time grows, collapsing toward the nonblocking issue\n"
                 "cost once compute exceeds the RMA latency (hit rate -> 1).\n";
    try {
        bench::maybe_write_json(cli, json);
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
    return 0;
}
