/// \file bench_fig23_timeline_illustration.cpp
/// Regenerates the behaviour illustrated by Figures 2 and 3 from *recorded
/// chunk-lifecycle events*: the simulator runs with tracing enabled, the
/// per-worker decomposition is derived by trace::analyze() from the event
/// stream (not from engine-side aggregates), and the timeline itself is
/// rendered as an ASCII Gantt of the same events. Under MPI+OpenMP every
/// chunk ends in an implicit barrier (Figure 2's synchronization idle);
/// under MPI+MPI the fastest worker refills the queue and nobody waits
/// (Figure 3), so t'_end < t_end.

#include <algorithm>
#include <functional>
#include <iostream>

#include "apps/synthetic.hpp"
#include "common/json_report.hpp"
#include "common/workloads.hpp"
#include "trace/analysis.hpp"
#include "trace/export.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace hdls;
    util::ArgParser cli("bench_fig23",
                        "Reproduces Figures 2/3: per-worker busy/idle decomposition and event "
                        "timeline of one node executing an imbalanced loop under both models");
    bench::add_common_options(cli);
    bench::add_json_option(cli);
    cli.add_int("iterations", 4096, "loop size");
    cli.add_int("gantt-width", 100, "columns of the ASCII timeline");
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }

    // A spatially-correlated imbalanced workload (sorted gaussian runs,
    // rotated so the expensive region sits mid-loop as in the paper's
    // applications) on a single 8-worker node, FAC2 chunks + static
    // sub-chunks: the configuration of the paper's illustration.
    apps::WorkloadSpec spec;
    spec.kind = apps::WorkloadKind::Gaussian;
    spec.iterations = static_cast<std::size_t>(cli.get_int("iterations"));
    spec.mean_seconds = 1e-3;
    spec.cov = 0.8;
    auto costs = apps::make_workload(spec);
    std::sort(costs.begin(), costs.end(), std::greater<>());
    std::rotate(costs.begin(),
                costs.begin() + static_cast<std::ptrdiff_t>(costs.size() / 3), costs.end());
    const sim::WorkloadTrace workload(std::move(costs));

    sim::ClusterSpec cluster = bench::cluster_from_options(cli, 1);
    cluster.workers_per_node = 8;
    sim::SimConfig cfg;
    cfg.inter = dls::Technique::FAC2;
    cfg.intra = dls::Technique::Static;
    cfg.trace = true;  // the figures below are derived from recorded events

    bench::JsonReport json("bench_fig23");
    json.add_param("iterations", cli.get_int("iterations"));

    const bool csv = cli.get_flag("csv");
    const int width = static_cast<int>(cli.get_int("gantt-width"));
    for (const sim::ExecModel model :
         {sim::ExecModel::MpiOpenMp, sim::ExecModel::MpiMpi}) {
        const auto r = simulate(model, cluster, cfg, workload);
        const trace::TraceAnalysis analysis = trace::analyze(*r.trace);
        std::cout << "--- " << exec_model_name(model) << " (Figure "
                  << (model == sim::ExecModel::MpiOpenMp ? 2 : 3) << ", from "
                  << r.trace->events.size() << " recorded events) ---\n";
        util::TextTable table({"worker", "busy (ms)", "idle/sync (ms)", "overhead (ms)",
                               "finish (ms)", "iterations", "chunks"});
        for (const auto& w : analysis.workers) {
            table.add_row({std::to_string(w.worker),
                           util::format_double(w.compute * 1e3, 2),
                           util::format_double(w.barrier_wait * 1e3, 2),
                           util::format_double(w.sched_overhead * 1e3, 2),
                           util::format_double(w.finish * 1e3, 2),
                           std::to_string(w.iterations), std::to_string(w.chunks)});
        }
        if (csv) {
            table.print_csv(std::cout);
        } else {
            table.print(std::cout);
            trace::ascii_gantt(*r.trace, std::cout, width);
        }
        std::cout << "loop end time: " << util::format_seconds(analysis.makespan)
                  << "   total idle: " << util::format_seconds(analysis.total_barrier_wait)
                  << "   imbalance: " << util::format_double(analysis.percent_imbalance, 2)
                  << "%\n\n";
        json.point()
            .label("model", std::string(exec_model_name(model)))
            .sample("makespan_s", analysis.makespan)
            .sample("idle_s", analysis.total_barrier_wait)
            .sample("imbalance_pct", analysis.percent_imbalance);
    }
    std::cout << "Expected: the MPI+MPI loop-end time (t'_end, Figure 3) is below the\n"
                 "MPI+OpenMP one (t_end, Figure 2), and its idle column is ~zero.\n";
    try {
        bench::maybe_write_json(cli, json);
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
    return 0;
}
