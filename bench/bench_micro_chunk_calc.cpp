/// \file bench_micro_chunk_calc.cpp
/// google-benchmark micro-measurements of the chunk calculators: the
/// step-indexed closed forms (the per-scheduling-step cost every worker
/// pays under the distributed protocol) and the stateful master-side
/// generators — plus the chunk *bodies* themselves (section=
/// kernel_throughput): the mandelbrot escape loop per SIMD backend, so the
/// scalar-vs-vector pixel rate is tracked by the same harness that tracks
/// the scheduling overhead it must amortize.

#include <benchmark/benchmark.h>

#include <vector>

#include "apps/mandelbrot.hpp"
#include "dls/chunk_formulas.hpp"
#include "dls/scheduler.hpp"
#include "simd/dispatch.hpp"

namespace {

using hdls::dls::Technique;

hdls::dls::LoopParams bench_params() {
    hdls::dls::LoopParams p;
    p.total_iterations = 1 << 20;
    p.workers = 16;
    p.sigma = 0.1;
    p.mu = 1.0;
    p.overhead_h = 1e-4;
    return p;
}

void BM_StepIndexedChunk(benchmark::State& state) {
    const auto technique = static_cast<Technique>(state.range(0));
    const auto p = bench_params();
    std::int64_t step = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hdls::dls::chunk_size_for_step(technique, p, step));
        step = (step + 1) % 256;
    }
    state.SetLabel(std::string(hdls::dls::technique_name(technique)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StepIndexedChunk)
    ->Arg(static_cast<int>(Technique::Static))
    ->Arg(static_cast<int>(Technique::SS))
    ->Arg(static_cast<int>(Technique::FSC))
    ->Arg(static_cast<int>(Technique::GSS))
    ->Arg(static_cast<int>(Technique::TSS))
    ->Arg(static_cast<int>(Technique::FAC2))
    ->Arg(static_cast<int>(Technique::TFSS))
    ->Arg(static_cast<int>(Technique::RND));

void BM_StatefulSchedulerDrain(benchmark::State& state) {
    const auto technique = static_cast<Technique>(state.range(0));
    const auto p = bench_params();
    for (auto _ : state) {
        auto sched = hdls::dls::make_scheduler(technique, p);
        std::int64_t chunks = 0;
        int worker = 0;
        while (auto a = sched->next(worker)) {
            benchmark::DoNotOptimize(a->size);
            ++chunks;
            worker = (worker + 1) % p.workers;
        }
        state.counters["chunks"] =
            benchmark::Counter(static_cast<double>(chunks), benchmark::Counter::kDefaults);
    }
    state.SetLabel(std::string(hdls::dls::technique_name(technique)));
}
BENCHMARK(BM_StatefulSchedulerDrain)
    ->Arg(static_cast<int>(Technique::Static))
    ->Arg(static_cast<int>(Technique::GSS))
    ->Arg(static_cast<int>(Technique::TSS))
    ->Arg(static_cast<int>(Technique::FAC))
    ->Arg(static_cast<int>(Technique::FAC2))
    ->Arg(static_cast<int>(Technique::WF))
    ->Arg(static_cast<int>(Technique::TFSS))
    ->Arg(static_cast<int>(Technique::AWFC))
    ->Unit(benchmark::kMicrosecond);

/// Pixels/s of the mandelbrot batch kernel per compiled-in backend. Skips
/// backends the executing CPU cannot run. items_processed = pixels, so the
/// reported items/s IS the pixel throughput; the label carries
/// section=kernel_throughput for the perf-smoke JSON parser.
void BM_MandelbrotKernel(benchmark::State& state) {
    const auto backend = static_cast<hdls::simd::Backend>(state.range(0));
    if (!hdls::simd::backend_usable(backend)) {
        // 1.7.x has no SkipWithMessage; run one no-op iteration so the row
        // reports ~0 items/s instead of failing the whole binary.
        for (auto _ : state) {
        }
        state.SetLabel("section=kernel_throughput backend=" +
                       std::string(hdls::simd::backend_name(backend)) + " skipped=1");
        return;
    }
    const auto& kernels = hdls::simd::kernels_for(backend);
    hdls::apps::MandelbrotConfig cfg;
    cfg.width = 256;
    cfg.height = 256;
    cfg.max_iter = 256;
    const hdls::simd::MandelbrotGeom geom = hdls::apps::mandelbrot_geometry(cfg);
    std::vector<int> out(static_cast<std::size_t>(cfg.pixels()));
    for (auto _ : state) {
        kernels.mandelbrot(geom, 0, cfg.pixels(), out.data());
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetLabel("section=kernel_throughput backend=" +
                   std::string(hdls::simd::backend_name(backend)) +
                   " width=" + std::to_string(kernels.width));
    state.SetItemsProcessed(state.iterations() * cfg.pixels());
}
BENCHMARK(BM_MandelbrotKernel)
    ->Arg(static_cast<int>(hdls::simd::Backend::Scalar))
    ->Arg(static_cast<int>(hdls::simd::Backend::Avx2))
    ->Arg(static_cast<int>(hdls::simd::Backend::Neon))
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
