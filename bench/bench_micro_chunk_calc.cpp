/// \file bench_micro_chunk_calc.cpp
/// google-benchmark micro-measurements of the chunk calculators: the
/// step-indexed closed forms (the per-scheduling-step cost every worker
/// pays under the distributed protocol) and the stateful master-side
/// generators.

#include <benchmark/benchmark.h>

#include "dls/chunk_formulas.hpp"
#include "dls/scheduler.hpp"

namespace {

using hdls::dls::Technique;

hdls::dls::LoopParams bench_params() {
    hdls::dls::LoopParams p;
    p.total_iterations = 1 << 20;
    p.workers = 16;
    p.sigma = 0.1;
    p.mu = 1.0;
    p.overhead_h = 1e-4;
    return p;
}

void BM_StepIndexedChunk(benchmark::State& state) {
    const auto technique = static_cast<Technique>(state.range(0));
    const auto p = bench_params();
    std::int64_t step = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hdls::dls::chunk_size_for_step(technique, p, step));
        step = (step + 1) % 256;
    }
    state.SetLabel(std::string(hdls::dls::technique_name(technique)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StepIndexedChunk)
    ->Arg(static_cast<int>(Technique::Static))
    ->Arg(static_cast<int>(Technique::SS))
    ->Arg(static_cast<int>(Technique::FSC))
    ->Arg(static_cast<int>(Technique::GSS))
    ->Arg(static_cast<int>(Technique::TSS))
    ->Arg(static_cast<int>(Technique::FAC2))
    ->Arg(static_cast<int>(Technique::TFSS))
    ->Arg(static_cast<int>(Technique::RND));

void BM_StatefulSchedulerDrain(benchmark::State& state) {
    const auto technique = static_cast<Technique>(state.range(0));
    const auto p = bench_params();
    for (auto _ : state) {
        auto sched = hdls::dls::make_scheduler(technique, p);
        std::int64_t chunks = 0;
        int worker = 0;
        while (auto a = sched->next(worker)) {
            benchmark::DoNotOptimize(a->size);
            ++chunks;
            worker = (worker + 1) % p.workers;
        }
        state.counters["chunks"] =
            benchmark::Counter(static_cast<double>(chunks), benchmark::Counter::kDefaults);
    }
    state.SetLabel(std::string(hdls::dls::technique_name(technique)));
}
BENCHMARK(BM_StatefulSchedulerDrain)
    ->Arg(static_cast<int>(Technique::Static))
    ->Arg(static_cast<int>(Technique::GSS))
    ->Arg(static_cast<int>(Technique::TSS))
    ->Arg(static_cast<int>(Technique::FAC))
    ->Arg(static_cast<int>(Technique::FAC2))
    ->Arg(static_cast<int>(Technique::WF))
    ->Arg(static_cast<int>(Technique::TFSS))
    ->Arg(static_cast<int>(Technique::AWFC))
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
