/// \file bench_fig4_internode_static.cpp
/// Regenerates Figure 4: STATIC at the inter-node level. Expected shape:
/// both implementations coincide for every intra-node technique except SS,
/// where MPI+MPI clearly loses (MPI_Win_lock polling under contention).

#include "common/figure.hpp"

int main(int argc, char** argv) {
    return hdls::bench::run_figure_bench(4, hdls::dls::Technique::Static, argc, argv);
}
