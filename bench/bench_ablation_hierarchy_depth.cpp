/// \file bench_ablation_hierarchy_depth.cpp
/// Ablation: two-level vs. three-level scheduling hierarchy as the node
/// count grows — the depth axis of the PR-3 shard-contention result.
///
/// A two-level tree funnels every node-queue refill to the level-0 queue:
/// under a fine-grained root schedule the rank-0 server serializes the
/// whole cluster and the per-acquire latency climbs with the node count.
/// A three-level tree (racks -> nodes -> cores) interposes one relay per
/// rack: the root hands each rack a few large FAC2 batches, the rack relay
/// slices them with SS at node-local cost, and only the rare rack-level
/// refills cross the fabric to rank 0 — so the refill contention divides
/// by the rack count. This bench sweeps 8 -> 64 simulated nodes (16
/// workers each, racks of 8 nodes) and reports the mean per-acquire
/// latency (successful GlobalAcquire/Steal events at any level), the
/// parallel time and the finish CoV.
///
/// Expected: depth 3 helps a little even at one rack (a relay pop is one
/// lock epoch where the root's distributed calculation is two serialized
/// RMA ops); from 32 nodes on it wins the acquire latency by an order of
/// magnitude, the same way sharding did — the tree is the composable form
/// of that fix, and the two compose (a sharded middle level).

#include <iostream>

#include "common/json_report.hpp"
#include "common/workloads.hpp"
#include "trace/trace.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace hdls;
    util::ArgParser cli("bench_ablation_hierarchy_depth",
                        "Two-level vs. three-level scheduling hierarchy under growing "
                        "node counts");
    bench::add_common_options(cli);
    bench::add_json_option(cli);
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }

    const sim::WorkloadTrace trace =
        bench::psia_paper_trace(bench::scaled_psia_points(cli) / 4);

    bench::JsonReport json("bench_ablation_hierarchy_depth");
    json.add_param("scale", cli.get_double("scale"));
    json.add_param("rpn", cli.get_int("rpn"));
    json.add_param("min_chunk", std::int64_t{8});

    util::TextTable table({"nodes", "hierarchy", "acquire (us)", "T (s)", "finish CoV",
                           "acquires", "steals"});
    for (const int nodes : {8, 16, 32, 64}) {
        const int racks = nodes / 8;
        const int per_rack = nodes / racks;
        struct Row {
            std::string label;
            sim::ClusterSpec cluster;
            sim::SimConfig cfg;
        };
        std::vector<Row> rows;
        {
            // Depth 2, centralized: the PR-3 hotspot baseline.
            Row r{"nodes,cores (centralized)", bench::cluster_from_options(cli, nodes), {}};
            r.cfg.inter = dls::Technique::SS;
            r.cfg.intra = dls::Technique::Static;
            rows.push_back(std::move(r));
        }
        {
            // Depth 2, sharded: PR 3's flat fix, for reference.
            Row r{"nodes,cores (sharded)", bench::cluster_from_options(cli, nodes), {}};
            r.cfg.inter = dls::Technique::SS;
            r.cfg.intra = dls::Technique::Static;
            r.cfg.inter_backend = dls::InterBackend::Sharded;
            rows.push_back(std::move(r));
        }
        {
            // Depth 3: FAC2 batches per rack, SS slicing inside the rack.
            Row r{"racks,nodes,cores (FAC2>SS)", bench::cluster_from_options(cli, nodes),
                  {}};
            r.cluster.tree = {{"racks", racks},
                              {"nodes", per_rack},
                              {"cores", r.cluster.workers_per_node}};
            r.cfg.levels = {{dls::Technique::FAC2, std::nullopt},
                            {dls::Technique::SS, std::nullopt},
                            {dls::Technique::Static, std::nullopt}};
            rows.push_back(std::move(r));
        }
        for (Row& row : rows) {
            row.cfg.min_chunk = 8;
            row.cfg.trace = true;
            const auto r = simulate(sim::ExecModel::MpiMpi, row.cluster, row.cfg, trace);
            const bench::AcquireStats acq = bench::acquire_stats(*r.trace);
            table.add_row({std::to_string(nodes), row.label,
                           util::format_double(acq.mean_latency * 1e6, 3),
                           util::format_double(r.parallel_time, 3),
                           util::format_double(r.finish_cov(), 4),
                           std::to_string(acq.acquires), std::to_string(acq.steals)});
            json.point()
                .label("nodes", static_cast<std::int64_t>(nodes))
                .label("hierarchy", row.label)
                .sample("acquire_us", acq.mean_latency * 1e6)
                .sample("parallel_s", r.parallel_time)
                .sample("finish_cov", r.finish_cov())
                .sample("steals", static_cast<double>(acq.steals));
        }
    }
    std::cout << "Hierarchy-depth ablation (PSIA workload, min_chunk=8, racks of 8 nodes, "
              << cli.get_int("rpn") << " ranks/node):\n";
    if (cli.get_flag("csv")) {
        table.print_csv(std::cout);
    } else {
        table.print(std::cout);
    }
    std::cout << "\nExpected: as racks multiply, leaf refills fan out over per-rack\n"
                 "relay servers and only rack-sized FAC2 batches reach rank 0, so the\n"
                 "three-level acquire latency stays nearly flat while the two-level\n"
                 "centralized latency climbs with the node count.\n";
    try {
        bench::maybe_write_json(cli, json);
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
    return 0;
}
