/// \file bench_ablation_multitenancy.cpp
/// Ablation: multiplexed concurrent job streams vs. back-to-back serial
/// execution of the same jobs over the same shared hierarchy.
///
/// A solo hierarchical run cannot keep the whole cluster busy on an
/// imbalanced loop: under STATIC inter-node placement the hot node is the
/// straggler and every other worker idles through its tail (the exact
/// imbalance Figures 4-7 study). The JobService recovers that idle
/// capacity by admitting several jobs at once and apportioning the worker
/// slots across them with priority × remaining-work weighted fair sharing
/// — while a job drains its straggler, its entitlement shrinks and the
/// freed slots flow to jobs that still have parallel work.
///
/// Two sections:
///  * real — wall-clock runs of the actual JobService on a latency-bound
///    imbalanced workload (the loop body waits on a virtual device, so
///    even a single-CPU host exposes the overlap), sweeping 1 -> 8
///    concurrent jobs against the serial baseline, plus a 2:1-priority
///    fairness probe that compares each job's measured slot-seconds with
///    its integrated entitlement.
///  * sim — the fluid job-stream model over the discrete-event engine,
///    extending the sweep to 32 concurrent jobs deterministically.
///
/// Expected: aggregate throughput strictly above serial from 2 jobs on,
/// exceeding 1.3x by 8 jobs; p99 job latency grows sublinearly in the
/// concurrency (fair sharing, not FIFO head-of-line blocking); measured
/// occupancy within 10% of the priority-weighted entitlement.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <thread>
#include <vector>

#include "common/json_report.hpp"
#include "common/workloads.hpp"
#include "core/job_service.hpp"
#include "sim/job_stream.hpp"
#include "util/table.hpp"

namespace {

using namespace hdls;

/// Iteration cost in seconds: a cool band and a 8x hot band on the upper
/// quarter, concentrated so STATIC placement makes one node the straggler.
[[nodiscard]] double iter_cost_s(std::int64_t i, std::int64_t n, double base_s) {
    return i >= (3 * n) / 4 ? 8.0 * base_s : base_s;
}

/// The loop body: waits out the iteration's virtual device latency. Sleep,
/// not spin, so concurrent jobs overlap on any host (CI runners included).
[[nodiscard]] core::ChunkBody make_body(std::int64_t n, double base_s) {
    return [n, base_s](std::int64_t begin, std::int64_t end) {
        double total = 0.0;
        for (std::int64_t i = begin; i < end; ++i) {
            total += iter_cost_s(i, n, base_s);
        }
        std::this_thread::sleep_for(std::chrono::duration<double>(total));
    };
}

struct StreamOutcome {
    double makespan = 0.0;
    double throughput = 0.0;  ///< iterations per second, aggregate
    double p50 = 0.0;
    double p99 = 0.0;
};

[[nodiscard]] double quantile(std::vector<double> v, double q) {
    if (v.empty()) {
        return 0.0;
    }
    std::sort(v.begin(), v.end());
    const double rank = q * static_cast<double>(v.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, v.size() - 1);
    return v[lo] + (v[hi] - v[lo]) * (rank - static_cast<double>(lo));
}

/// Runs `jobs` copies of the workload through one service instance with
/// `max_active` run slots and measures the stream end to end.
[[nodiscard]] StreamOutcome run_stream(const core::JobService::Config& cfg, int jobs,
                                       std::int64_t n, double base_s) {
    core::JobService service(cfg);
    const auto t0 = std::chrono::steady_clock::now();
    for (int j = 0; j < jobs; ++j) {
        core::LoopJob job;
        job.name = "job" + std::to_string(j);
        job.iterations = n;
        job.body = make_body(n, base_s);
        (void)service.submit(std::move(job));
    }
    const std::vector<core::JobResult> results = service.drain();
    const auto t1 = std::chrono::steady_clock::now();

    StreamOutcome out;
    out.makespan = std::chrono::duration<double>(t1 - t0).count();
    std::int64_t executed = 0;
    std::vector<double> latencies;
    latencies.reserve(results.size());
    for (const auto& r : results) {
        executed += r.report.executed_iterations();
        latencies.push_back(r.latency_seconds);
    }
    out.throughput = out.makespan > 0.0 ? static_cast<double>(executed) / out.makespan : 0.0;
    out.p50 = quantile(latencies, 0.50);
    out.p99 = quantile(latencies, 0.99);
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    util::ArgParser cli("bench_ablation_multitenancy",
                        "Concurrent job streams (weighted-fair JobService) vs. "
                        "serial back-to-back execution");
    bench::add_common_options(cli);
    bench::add_json_option(cli);
    cli.add_int("jobs_max", 8, "largest real-service concurrency level");
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }

    const double scale = cli.get_double("scale");
    const int jobs_max = std::max(1, static_cast<int>(cli.get_int("jobs_max")));
    // Latency-bound workload: ~200us of virtual device wait per cool
    // iteration. Scale shrinks the loop, never the per-iteration wait —
    // otherwise scheduling overhead would dominate at smoke scale.
    const auto n = static_cast<std::int64_t>(std::max(48.0, 256.0 * scale));
    const double base_s = 200e-6;

    bench::JsonReport json("bench_ablation_multitenancy");
    json.add_param("iterations_per_job", n);
    json.add_param("base_cost_us", base_s * 1e6);
    json.add_param("jobs_max", static_cast<std::int64_t>(jobs_max));
    json.add_param("schedule", "STATIC+SS");

    // The shared cluster: 2 nodes x 2 workers. STATIC inter placement pins
    // the hot band to node 1; SS intra keeps chunk boundaries frequent so
    // the governor has refill points to re-apportion at.
    core::JobService::Config cfg;
    cfg.shape = core::ClusterShape{2, 2};
    cfg.approach = core::Approach::MpiMpi;
    cfg.base.inter = dls::Technique::Static;
    cfg.base.intra = dls::Technique::SS;
    cfg.base.min_chunk = 4;
    cfg.queue_depth = 64;

    util::TextTable table({"jobs", "mode", "makespan (s)", "throughput (it/s)",
                           "speedup", "p50 lat (s)", "p99 lat (s)"});

    core::JobService::Config serial_cfg = cfg;
    serial_cfg.max_active = 1;
    double serial_throughput_at_max = 0.0;
    double concurrent_throughput_at_max = 0.0;
    for (int jobs = 1; jobs <= jobs_max; jobs *= 2) {
        const StreamOutcome serial = run_stream(serial_cfg, jobs, n, base_s);
        core::JobService::Config conc_cfg = cfg;
        conc_cfg.max_active = jobs;
        const StreamOutcome conc = run_stream(conc_cfg, jobs, n, base_s);
        const double speedup =
            serial.throughput > 0.0 ? conc.throughput / serial.throughput : 0.0;
        if (jobs == jobs_max) {
            serial_throughput_at_max = serial.throughput;
            concurrent_throughput_at_max = conc.throughput;
        }
        table.add_row({std::to_string(jobs), "serial",
                       util::format_double(serial.makespan, 4),
                       util::format_double(serial.throughput, 1), "1.00",
                       util::format_double(serial.p50, 4),
                       util::format_double(serial.p99, 4)});
        table.add_row({std::to_string(jobs), "concurrent",
                       util::format_double(conc.makespan, 4),
                       util::format_double(conc.throughput, 1),
                       util::format_double(speedup, 2),
                       util::format_double(conc.p50, 4),
                       util::format_double(conc.p99, 4)});
        json.point()
            .label("section", "real")
            .label("jobs", std::to_string(jobs))
            .sample("serial_throughput", serial.throughput)
            .sample("concurrent_throughput", conc.throughput)
            .sample("speedup", speedup)
            .sample("serial_p99_s", serial.p99)
            .sample("concurrent_p99_s", conc.p99);
    }

    // Fairness probe: two equal jobs at 2:1 priority; each job's measured
    // slot-seconds should track its integrated entitlement within 10%.
    // Uniform workload under SS+SS: any rank can pull any chunk, so a job
    // can always occupy exactly what it is entitled to — the probe
    // isolates the governor's fairness from workload-induced parallelism
    // collapse (which the throughput section above exploits on purpose).
    double fairness_error = 0.0;
    {
        core::JobService::Config fair_cfg = cfg;
        fair_cfg.max_active = 2;
        fair_cfg.base.inter = dls::Technique::SS;
        fair_cfg.base.intra = dls::Technique::SS;
        fair_cfg.base.min_chunk = 2;
        const std::int64_t n_fair = std::max<std::int64_t>(96, n);
        const core::ChunkBody uniform_body = [base_s](std::int64_t begin, std::int64_t end) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(static_cast<double>(end - begin) * base_s));
        };
        core::JobService service(fair_cfg);
        core::LoopJob hi;
        hi.name = "hi";
        hi.iterations = n_fair;
        hi.priority = 2.0;
        hi.body = uniform_body;
        core::LoopJob lo = hi;
        lo.name = "lo";
        lo.priority = 1.0;
        lo.body = uniform_body;
        const std::uint64_t hi_id = service.submit(std::move(hi));
        const std::uint64_t lo_id = service.submit(std::move(lo));
        const core::JobResult hi_r = service.wait(hi_id);
        const core::JobResult lo_r = service.wait(lo_id);
        for (const core::JobResult* r : {&hi_r, &lo_r}) {
            const double err =
                r->entitled_slot_seconds > 0.0
                    ? std::abs(r->slot_seconds - r->entitled_slot_seconds) /
                          r->entitled_slot_seconds
                    : 0.0;
            fairness_error = std::max(fairness_error, err);
            json.point()
                .label("section", "fairness")
                .label("job", r->name)
                .sample("priority", r->name == "hi" ? 2.0 : 1.0)
                .sample("slot_seconds", r->slot_seconds)
                .sample("entitled_slot_seconds", r->entitled_slot_seconds)
                .sample("share_error", err);
        }
    }

    // Sim section: the fluid stream model extends the sweep to 32 jobs on
    // the same imbalanced shape, deterministically.
    {
        std::vector<double> costs(static_cast<std::size_t>(n));
        for (std::int64_t i = 0; i < n; ++i) {
            costs[static_cast<std::size_t>(i)] = iter_cost_s(i, n, base_s);
        }
        const sim::WorkloadTrace load(costs);
        sim::ClusterSpec cluster = bench::cluster_from_options(cli, 2);
        cluster.workers_per_node = 2;
        sim::SimConfig scfg;
        scfg.inter = dls::Technique::Static;
        scfg.intra = dls::Technique::SS;
        scfg.min_chunk = 4;
        for (int jobs = 1; jobs <= 32; jobs *= 2) {
            std::vector<sim::StreamJob> stream(static_cast<std::size_t>(jobs));
            for (int j = 0; j < jobs; ++j) {
                stream[static_cast<std::size_t>(j)].name = "job" + std::to_string(j);
                stream[static_cast<std::size_t>(j)].workload = load;
            }
            const sim::JobStreamReport r =
                sim::simulate_job_stream(sim::ExecModel::MpiMpi, cluster, scfg, stream);
            json.point()
                .label("section", "sim")
                .label("jobs", std::to_string(jobs))
                .sample("aggregate_speedup", r.aggregate_speedup())
                .sample("makespan_s", r.makespan)
                .sample("p99_latency_s", r.p99_latency());
        }
    }

    std::cout << "Multitenancy ablation (" << cfg.shape.nodes << "x"
              << cfg.shape.workers_per_node << " workers, STATIC+SS, N=" << n
              << " per job, hot upper quarter at 8x):\n";
    if (cli.get_flag("csv")) {
        table.print_csv(std::cout);
    } else {
        table.print(std::cout);
    }
    std::cout << "\nfairness (2 jobs, 2:1 priority): max |occupancy - entitlement| / "
                 "entitlement = "
              << util::format_double(fairness_error, 3) << "\n";
    std::cout << "\nExpected: concurrent throughput strictly above serial from 2 jobs\n"
                 "on (>= 1.3x by " << jobs_max
              << "): the straggler tails of STATIC placement are\n"
                 "filled with other jobs' work instead of idling; p99 latency grows\n"
                 "sublinearly thanks to remaining-work-weighted fair sharing.\n";
    json.point()
        .label("section", "gate")
        .sample("serial_throughput", serial_throughput_at_max)
        .sample("concurrent_throughput", concurrent_throughput_at_max)
        .sample("speedup_at_max", serial_throughput_at_max > 0.0
                                      ? concurrent_throughput_at_max / serial_throughput_at_max
                                      : 0.0)
        .sample("fairness_error", fairness_error);
    try {
        bench::maybe_write_json(cli, json);
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
    return 0;
}
