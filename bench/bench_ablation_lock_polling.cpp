/// \file bench_ablation_lock_polling.cpp
/// Ablation: how the MPI_Win_lock polling parameters drive the intra-node
/// SS penalty of the MPI+MPI approach (the paper's ref [38] argument).
/// Sweeps the polling period and the per-attempt agent cost and reports
/// the MPI+MPI : MPI+OpenMP time ratio for X+SS.
///
/// A second, *real* (thread-backed) section measures the runtime's own
/// lock-acquisition discipline on a contended GSS+SS run: naive
/// yield-polling vs. the exponential pause/yield/sleep backoff ladder vs.
/// a blocking OS lock (minimpi::LockPolicy), reporting wall time and the
/// traced lock-grant latency for each.

#include <chrono>
#include <iostream>

#include "common/json_report.hpp"
#include "common/workloads.hpp"
#include "core/hdls.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace hdls;
    util::ArgParser cli("bench_ablation_lock_polling",
                        "SS-penalty sensitivity to the MPI_Win_lock polling model");
    bench::add_common_options(cli);
    bench::add_json_option(cli);
    cli.add_int("nodes", 2, "node count");
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }

    const sim::WorkloadTrace trace =
        bench::psia_paper_trace(bench::scaled_psia_points(cli) / 4);
    const int nodes = static_cast<int>(cli.get_int("nodes"));
    sim::SimConfig cfg;
    cfg.inter = dls::Technique::GSS;
    cfg.intra = dls::Technique::SS;

    // The baseline does not use the windows at all: constant reference.
    const auto hybrid =
        simulate(sim::ExecModel::MpiOpenMp, bench::cluster_from_options(cli, nodes), cfg, trace);

    bench::JsonReport json("bench_ablation_lock_polling");
    json.add_param("nodes", static_cast<std::int64_t>(nodes));
    json.add_param("scale", cli.get_double("scale"));
    json.add_param("rpn", cli.get_int("rpn"));

    util::TextTable table({"poll (us)", "attempt (us)", "MPI+MPI T (s)", "MPI+OpenMP T (s)",
                           "ratio", "lock wait (worker-s)"});
    for (const double poll : {0.0, 1.0, 2.5, 5.0, 10.0}) {
        for (const double attempt : {0.0, 1.0, 3.0, 6.0}) {
            sim::ClusterSpec cluster = bench::cluster_from_options(cli, nodes);
            cluster.costs.shmem_lock_poll_us = poll;
            cluster.costs.shmem_lock_attempt_us = attempt;
            const auto r = simulate(sim::ExecModel::MpiMpi, cluster, cfg, trace);
            table.add_row({util::format_double(poll, 1), util::format_double(attempt, 1),
                           util::format_double(r.parallel_time, 3),
                           util::format_double(hybrid.parallel_time, 3),
                           util::format_double(r.parallel_time / hybrid.parallel_time, 2),
                           util::format_double(r.total_lock_wait(), 2)});
            json.point()
                .label("sweep", "polling_model")
                .label("poll_us", util::format_double(poll, 1))
                .label("attempt_us", util::format_double(attempt, 1))
                .sample("mpimpi_s", r.parallel_time)
                .sample("ratio", r.parallel_time / hybrid.parallel_time)
                .sample("lock_wait_s", r.total_lock_wait());
        }
    }
    std::cout << "Lock-polling ablation (PSIA workload, GSS+SS, " << nodes << " nodes x "
              << cli.get_int("rpn") << "):\n";
    if (cli.get_flag("csv")) {
        table.print_csv(std::cout);
    } else {
        table.print(std::cout);
    }
    std::cout << "\nExpected: the SS penalty grows with both knobs; with a free lock\n"
                 "(poll=attempt=0) MPI+MPI matches the OpenMP atomic-dequeue baseline.\n";

    // ---- real-executor section: the lock-polling backoff ladder ---------
    // GSS+SS on the thread-backed runtime takes one exclusive window epoch
    // per iteration: the heaviest lock contention the library can produce.
    // The backoff ladder should cut wall time (and traced lock-grant
    // latency) against naive yield-polling under oversubscription.
    constexpr std::int64_t kRealIterations = 4000;
    core::HierConfig real_cfg;
    real_cfg.inter = dls::Technique::GSS;
    real_cfg.intra = dls::Technique::SS;
    real_cfg.trace = true;
    const auto body = [](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
            const auto t0 = std::chrono::steady_clock::now();
            while (std::chrono::steady_clock::now() - t0 < std::chrono::microseconds(5)) {
            }
        }
    };
    const auto policy_name = [](minimpi::LockPolicy p) {
        switch (p) {
            case minimpi::LockPolicy::Spin:
                return "spin (naive poll)";
            case minimpi::LockPolicy::Backoff:
                return "exponential backoff";
            case minimpi::LockPolicy::Block:
                return "blocking";
        }
        return "?";
    };
    const minimpi::LockPolicy original = minimpi::lock_policy();
    util::TextTable real_table(
        {"lock policy", "wall (s)", "lock wait (worker-s)", "p99 grant (us)"});
    for (const minimpi::LockPolicy policy :
         {minimpi::LockPolicy::Spin, minimpi::LockPolicy::Backoff,
          minimpi::LockPolicy::Block}) {
        minimpi::set_lock_policy(policy);
        double best = 0.0;
        double lock_wait = 0.0;
        double p99 = 0.0;
        auto& point = json.point();
        point.label("sweep", "real_lock_policy").label("policy", policy_name(policy));
        for (int rep = 0; rep < 3; ++rep) {
            const auto t0 = std::chrono::steady_clock::now();
            const auto report = hdls::parallel_for(core::ClusterShape{2, 8},
                                                   core::Approach::MpiMpi, real_cfg,
                                                   kRealIterations, body);
            const double wall =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
            point.sample("wall_s", wall);
            if (rep == 0 || wall < best) {
                best = wall;
                const auto analysis = trace::analyze(*report.trace);
                lock_wait = analysis.total_lock_wait;
                p99 = analysis.lock_wait_stats.p99;
            }
        }
        real_table.add_row({policy_name(policy), util::format_double(best, 4),
                            util::format_double(lock_wait, 4),
                            util::format_double(p99 * 1e6, 2)});
    }
    minimpi::set_lock_policy(original);
    std::cout << "\nReal thread-backed run (GSS+SS, 2 nodes x 8 ranks, "
              << kRealIterations << " iterations, best of 3):\n";
    if (cli.get_flag("csv")) {
        real_table.print_csv(std::cout);
    } else {
        real_table.print(std::cout);
    }
    std::cout << "\nExpected: backoff at or below naive polling (well below when the\n"
                 "host is oversubscribed), both within reach of the blocking baseline\n"
                 "an RMA agent cannot use.\n";
    try {
        bench::maybe_write_json(cli, json);
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
    return 0;
}
