/// \file bench_ablation_lock_polling.cpp
/// Ablation: how the MPI_Win_lock polling parameters drive the intra-node
/// SS penalty of the MPI+MPI approach (the paper's ref [38] argument).
/// Sweeps the polling period and the per-attempt agent cost and reports
/// the MPI+MPI : MPI+OpenMP time ratio for X+SS.

#include <iostream>

#include "common/workloads.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace hdls;
    util::ArgParser cli("bench_ablation_lock_polling",
                        "SS-penalty sensitivity to the MPI_Win_lock polling model");
    bench::add_common_options(cli);
    cli.add_int("nodes", 2, "node count");
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }

    const sim::WorkloadTrace trace =
        bench::psia_paper_trace(bench::scaled_psia_points(cli) / 4);
    const int nodes = static_cast<int>(cli.get_int("nodes"));
    sim::SimConfig cfg;
    cfg.inter = dls::Technique::GSS;
    cfg.intra = dls::Technique::SS;

    // The baseline does not use the windows at all: constant reference.
    const auto hybrid =
        simulate(sim::ExecModel::MpiOpenMp, bench::cluster_from_options(cli, nodes), cfg, trace);

    util::TextTable table({"poll (us)", "attempt (us)", "MPI+MPI T (s)", "MPI+OpenMP T (s)",
                           "ratio", "lock wait (worker-s)"});
    for (const double poll : {0.0, 1.0, 2.5, 5.0, 10.0}) {
        for (const double attempt : {0.0, 1.0, 3.0, 6.0}) {
            sim::ClusterSpec cluster = bench::cluster_from_options(cli, nodes);
            cluster.costs.shmem_lock_poll_us = poll;
            cluster.costs.shmem_lock_attempt_us = attempt;
            const auto r = simulate(sim::ExecModel::MpiMpi, cluster, cfg, trace);
            table.add_row({util::format_double(poll, 1), util::format_double(attempt, 1),
                           util::format_double(r.parallel_time, 3),
                           util::format_double(hybrid.parallel_time, 3),
                           util::format_double(r.parallel_time / hybrid.parallel_time, 2),
                           util::format_double(r.total_lock_wait(), 2)});
        }
    }
    std::cout << "Lock-polling ablation (PSIA workload, GSS+SS, " << nodes << " nodes x "
              << cli.get_int("rpn") << "):\n";
    if (cli.get_flag("csv")) {
        table.print_csv(std::cout);
    } else {
        table.print(std::cout);
    }
    std::cout << "\nExpected: the SS penalty grows with both knobs; with a free lock\n"
                 "(poll=attempt=0) MPI+MPI matches the OpenMP atomic-dequeue baseline.\n";
    return 0;
}
