/// \file bench_ablation_nowait.cpp
/// Ablation for the paper's Section-6 future work: does `schedule(...)
/// nowait` close the implicit-barrier gap? Compares the three execution
/// models on the figure workloads for X+STATIC (where the barrier hurts
/// most) and X+GSS.

#include <iostream>

#include "common/json_report.hpp"
#include "common/workloads.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace hdls;
    util::ArgParser cli("bench_ablation_nowait",
                        "MPI+OpenMP with nowait worksharing vs the implicit barrier vs MPI+MPI");
    bench::add_common_options(cli);
    bench::add_json_option(cli);
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }

    struct App {
        std::string name;
        sim::WorkloadTrace trace;
    };
    const std::vector<App> apps_list = {
        {"Mandelbrot", bench::mandelbrot_paper_trace(bench::scaled_mandelbrot_dim(cli) / 2)},
        {"PSIA", bench::psia_paper_trace(bench::scaled_psia_points(cli) / 4)},
    };

    bench::JsonReport json("bench_ablation_nowait");
    json.add_param("scale", cli.get_double("scale"));
    json.add_param("rpn", cli.get_int("rpn"));

    util::TextTable table({"application", "combination", "nodes", "MPI+OpenMP (s)",
                           "+nowait (s)", "MPI+MPI (s)"});
    for (const auto& app : apps_list) {
        for (const dls::Technique intra : {dls::Technique::Static, dls::Technique::GSS}) {
            sim::SimConfig cfg;
            cfg.inter = dls::Technique::GSS;
            cfg.intra = intra;
            for (const int nodes : {2, 8}) {
                const auto cluster = bench::cluster_from_options(cli, nodes);
                const auto barrier =
                    simulate(sim::ExecModel::MpiOpenMp, cluster, cfg, app.trace);
                const auto nowait =
                    simulate(sim::ExecModel::MpiOpenMpNowait, cluster, cfg, app.trace);
                const auto mpimpi = simulate(sim::ExecModel::MpiMpi, cluster, cfg, app.trace);
                table.add_row(
                    {app.name,
                     "GSS+" + std::string(dls::technique_name(intra)), std::to_string(nodes),
                     util::format_double(barrier.parallel_time, 2),
                     util::format_double(nowait.parallel_time, 2),
                     util::format_double(mpimpi.parallel_time, 2)});
                json.point()
                    .label("app", app.name)
                    .label("intra", std::string(dls::technique_name(intra)))
                    .label("nodes", static_cast<std::int64_t>(nodes))
                    .sample("openmp_s", barrier.parallel_time)
                    .sample("nowait_s", nowait.parallel_time)
                    .sample("mpimpi_s", mpimpi.parallel_time);
            }
        }
    }
    std::cout << "nowait ablation (the paper's future work, Section 6):\n";
    if (cli.get_flag("csv")) {
        table.print_csv(std::cout);
    } else {
        table.print(std::cout);
    }
    std::cout << "\nExpected: nowait removes most of the barrier idle (approaching MPI+MPI\n"
                 "for X+STATIC) but keeps the funneled master-only refill, so MPI+MPI's\n"
                 "any-rank refill retains an edge under inter-node imbalance.\n";
    try {
        bench::maybe_write_json(cli, json);
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
    return 0;
}
