#include "common/figure.hpp"

#include <iostream>
#include <map>
#include <vector>

#include "common/json_report.hpp"
#include "ompsim/schedule.hpp"
#include "util/table.hpp"

namespace hdls::bench {

namespace {

struct Series {
    std::string app;
    dls::Technique intra;
    sim::ExecModel model;
    std::map<int, double> time_by_nodes;  // nodes -> parallel time (s)
};

void print_subfigure(std::ostream& os, const std::string& app, dls::Technique inter,
                     const std::vector<Series>& all, bool csv) {
    std::vector<std::string> header = {"intra-node DLS", "implementation"};
    for (const int n : kNodeCounts) {
        header.push_back("T(" + std::to_string(n) + " nodes) s");
    }
    util::TextTable table(header);
    for (const auto& s : all) {
        if (s.app != app) {
            continue;
        }
        std::vector<std::string> row = {std::string(dls::technique_name(s.intra)),
                                        std::string(exec_model_name(s.model))};
        if (s.time_by_nodes.empty()) {
            for (std::size_t i = 0; i < std::size(kNodeCounts); ++i) {
                row.push_back("n/a");
            }
        } else {
            for (const int n : kNodeCounts) {
                row.push_back(util::format_double(s.time_by_nodes.at(n), 2));
            }
        }
        table.add_row(std::move(row));
    }
    os << "--- " << app << " (" << dls::technique_name(inter)
       << " at the inter-node level) ---\n";
    if (csv) {
        table.print_csv(os);
    } else {
        table.print(os);
    }
    os << "\n";
}

}  // namespace

int run_figure_bench(int figure_id, dls::Technique inter, int argc, const char* const* argv) {
    util::ArgParser cli("bench_fig" + std::to_string(figure_id),
                        "Reproduces Figure " + std::to_string(figure_id) +
                            ": parallel loop time of Mandelbrot and PSIA with " +
                            std::string(dls::technique_name(inter)) +
                            " at the inter-node level, five intra-node techniques, "
                            "MPI+OpenMP baseline vs the proposed MPI+MPI approach");
    add_common_options(cli);
    add_json_option(cli);
    cli.add_flag("extended-openmp",
                 "allow TSS/FAC2 intra-node schedules for MPI+OpenMP "
                 "(LaPeSD-libGOMP-style; the paper's Intel stack could not)");
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
    const bool csv = cli.get_flag("csv");
    const bool extended = cli.get_flag("extended-openmp");

    struct App {
        std::string name;
        sim::WorkloadTrace trace;
    };
    std::vector<App> apps_list;
    apps_list.push_back({"Mandelbrot", mandelbrot_paper_trace(scaled_mandelbrot_dim(cli))});
    apps_list.push_back({"PSIA", psia_paper_trace(scaled_psia_points(cli))});

    if (!csv) {
        std::cout << "Figure " << figure_id << " reproduction: "
                  << dls::technique_name(inter) << " inter-node scheduling, "
                  << cli.get_int("rpn") << " workers/node, nodes = {2, 4, 8, 16}\n";
        for (const auto& app : apps_list) {
            const auto s = app.trace.stats();
            std::cout << "  " << app.name << ": N=" << app.trace.iterations()
                      << " iterations, mean cost " << util::format_seconds(s.mean)
                      << ", CoV " << util::format_double(s.cov, 2) << ", total work "
                      << util::format_double(s.sum, 1) << " worker-seconds\n";
        }
        std::cout << "\n";
    }

    std::vector<Series> series;
    for (const auto& app : apps_list) {
        for (const dls::Technique intra : dls::paper_intranode_techniques()) {
            for (const sim::ExecModel model :
                 {sim::ExecModel::MpiOpenMp, sim::ExecModel::MpiMpi}) {
                Series s;
                s.app = app.name;
                s.intra = intra;
                s.model = model;
                const bool openmp_ok =
                    model != sim::ExecModel::MpiOpenMp ||
                    ompsim::openmp_equivalent(intra).has_value() || extended;
                if (openmp_ok) {
                    sim::SimConfig cfg;
                    cfg.inter = inter;
                    cfg.intra = intra;
                    for (const int nodes : kNodeCounts) {
                        const auto report =
                            simulate(model, cluster_from_options(cli, nodes), cfg, app.trace);
                        s.time_by_nodes[nodes] = report.parallel_time;
                    }
                }
                series.push_back(std::move(s));
            }
        }
    }

    for (const auto& app : apps_list) {
        print_subfigure(std::cout, app.name, inter, series, csv);
    }

    JsonReport json("bench_fig" + std::to_string(figure_id));
    json.add_param("inter", std::string(dls::technique_name(inter)));
    json.add_param("scale", cli.get_double("scale"));
    json.add_param("rpn", cli.get_int("rpn"));
    for (const auto& s : series) {
        for (const auto& [nodes, seconds] : s.time_by_nodes) {
            json.point()
                .label("app", s.app)
                .label("intra", std::string(dls::technique_name(s.intra)))
                .label("model", std::string(exec_model_name(s.model)))
                .label("nodes", static_cast<std::int64_t>(nodes))
                .sample("parallel_s", seconds);
        }
    }
    try {
        maybe_write_json(cli, json);
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }

    if (!csv) {
        std::cout << "Expected shape (paper, Section 5): X+STATIC favours MPI+MPI (no implicit\n"
                     "barrier), X+SS favours MPI+OpenMP (MPI_Win_lock polling contention),\n"
                     "remaining combinations roughly tie; gaps shrink as nodes increase and\n"
                     "are smaller for PSIA (lower intrinsic imbalance) than for Mandelbrot.\n";
    }
    return 0;
}

}  // namespace hdls::bench
