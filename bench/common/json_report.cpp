#include "common/json_report.hpp"

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <utility>

#include "metrics/exposition.hpp"
#include "metrics/metrics.hpp"
#include "util/stats.hpp"

#ifndef HDLS_GIT_SHA
#define HDLS_GIT_SHA "unknown"
#endif

namespace hdls::bench {

namespace {

[[nodiscard]] std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"':
                out += "\\\"";
                break;
            case '\\':
                out += "\\\\";
                break;
            case '\n':
                out += "\\n";
                break;
            case '\t':
                out += "\\t";
                break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

/// Full-precision compact number rendering (JSON has no NaN/Inf: they
/// serialize as 0, matching the trace exporters' convention).
[[nodiscard]] std::string number(double v) {
    if (!std::isfinite(v)) {
        return "0";
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

void append_string_object(std::string& out,
                          const std::vector<std::pair<std::string, std::string>>& kv) {
    out += "{";
    for (std::size_t i = 0; i < kv.size(); ++i) {
        if (i > 0) {
            out += ",";
        }
        out += "\"" + json_escape(kv[i].first) + "\":\"" + json_escape(kv[i].second) + "\"";
    }
    out += "}";
}

/// Run metadata stamped into every report: which build produced the
/// numbers, where, and when — so archived CI artifacts stay attributable.
[[nodiscard]] std::vector<std::pair<std::string, std::string>> run_metadata() {
    std::vector<std::pair<std::string, std::string>> meta;
    meta.emplace_back("git_sha", HDLS_GIT_SHA);
    char host[256] = "unknown";
    if (::gethostname(host, sizeof(host)) == 0) {
        host[sizeof(host) - 1] = '\0';
    }
    meta.emplace_back("hostname", host);
    std::time_t now = std::time(nullptr);
    std::tm utc{};
    char stamp[32] = "unknown";
    if (gmtime_r(&now, &utc) != nullptr) {
        std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
    }
    meta.emplace_back("timestamp_utc", stamp);
#if defined(__VERSION__)
    meta.emplace_back("compiler", __VERSION__);
#else
    meta.emplace_back("compiler", "unknown");
#endif
    return meta;
}

}  // namespace

JsonReport::Point& JsonReport::Point::label(const std::string& key, const std::string& value) {
    labels_.emplace_back(key, value);
    return *this;
}

JsonReport::Point& JsonReport::Point::label(const std::string& key, std::int64_t value) {
    return label(key, std::to_string(value));
}

JsonReport::Point& JsonReport::Point::sample(const std::string& metric, double value) {
    samples_[metric].push_back(value);
    return *this;
}

JsonReport::JsonReport(std::string name) : name_(std::move(name)) {}

void JsonReport::add_param(const std::string& key, const std::string& value) {
    params_.emplace_back(key, value);
}

void JsonReport::add_param(const std::string& key, double value) {
    add_param(key, std::string(number(value)));
}

void JsonReport::add_param(const std::string& key, std::int64_t value) {
    add_param(key, std::to_string(value));
}

JsonReport::Point& JsonReport::point() {
    points_.emplace_back();
    return points_.back();
}

std::string JsonReport::render() const {
    std::string out = "{\"name\":\"" + json_escape(name_) + "\",\"meta\":";
    append_string_object(out, run_metadata());
    out += ",\"params\":";
    append_string_object(out, params_);
    out += ",\"points\":[";
    for (std::size_t p = 0; p < points_.size(); ++p) {
        if (p > 0) {
            out += ",";
        }
        const Point& pt = points_[p];
        out += "\n{\"labels\":";
        append_string_object(out, pt.labels_);
        out += ",\"metrics\":{";
        bool first = true;
        for (const auto& [metric, values] : pt.samples_) {
            if (!first) {
                out += ",";
            }
            first = false;
            const util::Summary s = util::summarize(values);
            out += "\"" + json_escape(metric) + "\":{\"count\":" + std::to_string(s.count) +
                   ",\"median\":" + number(s.median) + ",\"mean\":" + number(s.mean) +
                   ",\"stddev\":" + number(s.stddev) + ",\"min\":" + number(s.min) +
                   ",\"max\":" + number(s.max) + ",\"values\":[";
            for (std::size_t i = 0; i < values.size(); ++i) {
                if (i > 0) {
                    out += ",";
                }
                out += number(values[i]);
            }
            out += "]}";
        }
        out += "}}";
    }
    // The process-wide runtime-metrics snapshot at render time: what the
    // scheduling layers actually did while the bench ran (counters are
    // process totals, not per-point deltas).
    out += "\n],\"metrics\":" + metrics::to_json(metrics::registry().snapshot()) + "}\n";
    return out;
}

void JsonReport::write(const std::string& path) const {
    const std::string doc = render();
    if (path == "-") {
        std::cout << doc;
        return;
    }
    std::ofstream file(path);
    if (!file) {
        throw std::runtime_error("json report: cannot open '" + path + "' for writing");
    }
    file << doc;
    if (!file) {
        throw std::runtime_error("json report: write to '" + path + "' failed");
    }
}

void add_json_option(util::ArgParser& cli) {
    cli.add_string("json", "",
                   "write a machine-readable report of this run to the given path "
                   "('-' for stdout); see bench/common/json_report.hpp for the schema");
}

bool maybe_write_json(const util::ArgParser& cli, const JsonReport& report) {
    const std::string path = cli.get_string("json");
    if (path.empty()) {
        return false;
    }
    report.write(path);
    return true;
}

}  // namespace hdls::bench
