#pragma once
/// \file figure.hpp
/// Shared driver for the Figure 4-7 reproductions: one inter-node
/// technique, the five intra-node techniques, both implementations, both
/// applications, 2-16 nodes.

#include <string>

#include "common/workloads.hpp"
#include "dls/technique.hpp"

namespace hdls::bench {

/// Runs and prints one figure. `figure_id` is the paper's figure number;
/// `inter` its first-level technique. Reproduces the paper's Intel-stack
/// restriction: MPI+OpenMP columns are "n/a" for intra techniques the
/// OpenMP schedule clause cannot express (TSS, FAC2), unless
/// --extended-openmp is passed (the LaPeSD-libGOMP future-work mode).
int run_figure_bench(int figure_id, dls::Technique inter, int argc, const char* const* argv);

}  // namespace hdls::bench
