#include "common/workloads.hpp"

#include <algorithm>
#include <cmath>

#include "apps/mandelbrot.hpp"
#include "apps/psia.hpp"
#include "util/stats.hpp"

namespace hdls::bench {

sim::WorkloadTrace mandelbrot_paper_trace(int dim) {
    apps::MandelbrotConfig cfg;
    cfg.width = dim;
    cfg.height = dim;
    cfg.max_iter = 256;
    cfg.re_min = -2.1;
    cfg.re_max = 0.9;
    cfg.im_min = -2.0;
    cfg.im_max = 1.0;
    // Calibrated so the full-size image totals ~600 worker-seconds (the
    // scale the paper's 2-node times imply). The per-iteration cost is
    // *not* rescaled for smaller images: granularity drives the contention
    // behaviour, so --scale shrinks total work but preserves every shape.
    return sim::WorkloadTrace(apps::mandelbrot_cost_trace(cfg, 12e-6));
}

sim::WorkloadTrace psia_paper_trace(std::int64_t points) {
    const apps::PointCloud cloud =
        apps::PointCloud::synthetic(static_cast<std::size_t>(points), 0x5109'1234ULL);
    apps::PsiaConfig cfg;
    cfg.bin_size = 0.01;  // alpha_max 0.16: local supports, not whole-object
    // base + k*|support|: ~100-300 us per spin image. The sub-millisecond
    // granularity is what puts SS into the lock-contention regime, so it is
    // kept constant across --scale; k is normalized by cloud density so the
    // cost *distribution* is scale-invariant too.
    const double density_norm = static_cast<double>(1 << 20) / static_cast<double>(points);
    return sim::WorkloadTrace(
        apps::psia_cost_trace(cloud, cfg, 100e-6, 3e-9 * density_norm));
}

void add_common_options(util::ArgParser& cli) {
    cli.add_flag("csv", "emit CSV instead of aligned text tables");
    cli.add_double("scale", 1.0,
                   "workload scale in (0,1]: scales Mandelbrot pixels and PSIA points; "
                   "1.0 reproduces the calibrated full-size workloads");
    cli.add_int("rpn", kWorkersPerNode, "ranks/threads per node (paper: 16)");
    sim::CostModel defaults;
    cli.add_double("rma_us", defaults.internode_rma_us, "inter-node RMA latency per op (us)");
    cli.add_double("gq_service_us", defaults.global_queue_service_us,
                   "global-queue serialization per atomic (us)");
    cli.add_double("lock_hold_us", defaults.shmem_lock_hold_us,
                   "MPI_Win_lock epoch hold time (us)");
    cli.add_double("lock_poll_us", defaults.shmem_lock_poll_us,
                   "MPI_Win_lock lock-attempt polling period (us)");
    cli.add_double("lock_attempt_us", defaults.shmem_lock_attempt_us,
                   "target-agent cost per lock-attempt message (us)");
    cli.add_double("omp_dequeue_us", defaults.omp_dequeue_us,
                   "OpenMP worksharing dequeue cost (us)");
    cli.add_double("barrier_base_us", defaults.omp_barrier_base_us, "OpenMP barrier base (us)");
    cli.add_double("barrier_per_thread_us", defaults.omp_barrier_per_thread_us,
                   "OpenMP barrier per-thread cost (us)");
    cli.add_double("chunk_overhead_us", defaults.chunk_overhead_us,
                   "per-chunk bookkeeping cost (us)");
}

sim::ClusterSpec cluster_from_options(const util::ArgParser& cli, int nodes) {
    sim::ClusterSpec spec;
    spec.nodes = nodes;
    spec.workers_per_node = static_cast<int>(cli.get_int("rpn"));
    spec.costs.internode_rma_us = cli.get_double("rma_us");
    spec.costs.global_queue_service_us = cli.get_double("gq_service_us");
    spec.costs.shmem_lock_hold_us = cli.get_double("lock_hold_us");
    spec.costs.shmem_lock_poll_us = cli.get_double("lock_poll_us");
    spec.costs.shmem_lock_attempt_us = cli.get_double("lock_attempt_us");
    spec.costs.omp_dequeue_us = cli.get_double("omp_dequeue_us");
    spec.costs.omp_barrier_base_us = cli.get_double("barrier_base_us");
    spec.costs.omp_barrier_per_thread_us = cli.get_double("barrier_per_thread_us");
    spec.costs.chunk_overhead_us = cli.get_double("chunk_overhead_us");
    spec.validate();
    return spec;
}

int scaled_mandelbrot_dim(const util::ArgParser& cli) {
    const double scale = std::clamp(cli.get_double("scale"), 1e-3, 1.0);
    return std::max(64, static_cast<int>(std::lround(1024.0 * std::sqrt(scale))));
}

std::int64_t scaled_psia_points(const util::ArgParser& cli) {
    const double scale = std::clamp(cli.get_double("scale"), 1e-3, 1.0);
    return std::max<std::int64_t>(4096,
                                  static_cast<std::int64_t>(std::lround((1 << 20) * scale)));
}

AcquireStats acquire_stats(const trace::Trace& trace) {
    AcquireStats out;
    util::OnlineStats latency;
    for (const auto& e : trace.events) {
        switch (e.kind) {
            case trace::EventKind::GlobalAcquire:
            case trace::EventKind::Steal:
                if (e.b > 0) {
                    latency.add(e.duration());
                    ++out.acquires;
                    out.steals += e.kind == trace::EventKind::Steal ? 1 : 0;
                }
                break;
            case trace::EventKind::Prefetch:
                out.hidden_seconds += e.wait;
                if (e.a != 0) {
                    ++out.prefetch_hits;
                } else {
                    ++out.prefetch_misses;
                }
                break;
            default:
                break;
        }
    }
    out.mean_latency = latency.mean();
    if (out.acquires > 0) {
        out.effective_mean_latency =
            std::max(0.0, latency.sum() - out.hidden_seconds) /
            static_cast<double>(out.acquires);
    }
    return out;
}

}  // namespace hdls::bench
