#pragma once
/// \file json_report.hpp
/// Machine-readable benchmark output — the common `--json <path>` flag of
/// every bench binary.
///
/// A run serializes to one JSON document:
///
///   {"name": "bench_ablation_prefetch",
///    "meta": {"git_sha": "...", "hostname": "...",
///             "timestamp_utc": "2026-08-08T12:00:00Z", "compiler": "..."},
///    "params": {"scale": "0.02", "rpn": "16"},
///    "points": [
///      {"labels": {"nodes": "32", "backend": "sharded"},
///       "metrics": {"acquire_us": {"count": 3, "median": 2.2,
///                   "mean": 2.3, "stddev": 0.1, "min": 2.2, "max": 2.4,
///                   "values": [2.2, 2.4, 2.2]}}}],
///    "metrics": {...}}   // process-wide runtime-metrics snapshot
///                        // (metrics::to_json) taken at render time
///
/// Repeated samples of a metric at one point are aggregated through
/// util::summarize — the one stats implementation — instead of the ad-hoc
/// mean/median math bench binaries used to hand-roll. CI's perf-smoke job
/// parses these artifacts and fails on sanity inversions, so the perf
/// claims of the ablation benches hold as a machine-checked trend rather
/// than an eyeballed table. (The bench_micro_* binaries are Google
/// Benchmark programs; use their native --benchmark_format=json instead.)

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/cli.hpp"

namespace hdls::bench {

class JsonReport {
public:
    /// One measured point of a sweep, identified by its labels (e.g.
    /// nodes=32, backend=sharded). Metrics hold one sample per repetition.
    class Point {
    public:
        Point& label(const std::string& key, const std::string& value);
        Point& label(const std::string& key, std::int64_t value);
        /// Adds one repetition's sample of `metric` at this point.
        Point& sample(const std::string& metric, double value);

    private:
        friend class JsonReport;
        std::vector<std::pair<std::string, std::string>> labels_;
        std::map<std::string, std::vector<double>> samples_;
    };

    /// `name` is the bench binary's name (the document's identity in CI).
    explicit JsonReport(std::string name);

    /// Run-level parameters (workload scale, ranks per node, cost-model
    /// overrides, ...), rendered in insertion order.
    void add_param(const std::string& key, const std::string& value);
    void add_param(const std::string& key, double value);
    void add_param(const std::string& key, std::int64_t value);

    /// Appends a new point and returns it for label()/sample() chaining.
    /// The reference stays valid until the next point() call.
    [[nodiscard]] Point& point();

    /// Renders the whole document (exposed for tests; write() uses it).
    [[nodiscard]] std::string render() const;

    /// Serializes to `path` ("-" writes to stdout). Throws
    /// std::runtime_error when the file cannot be opened.
    void write(const std::string& path) const;

private:
    std::string name_;
    std::vector<std::pair<std::string, std::string>> params_;
    std::vector<Point> points_;
};

/// Registers the common `--json <path>` option on a bench parser (call
/// alongside add_common_options).
void add_json_option(util::ArgParser& cli);

/// Writes `report` to the path given via --json, if one was provided.
/// Returns true when a file was written.
bool maybe_write_json(const util::ArgParser& cli, const JsonReport& report);

}  // namespace hdls::bench
