#pragma once
/// \file workloads.hpp
/// The two canonical evaluation workloads of the paper (Section 4) as
/// simulator traces, plus the shared bench conventions (node counts,
/// cluster construction, CLI knobs).
///
/// Scaling note (also in EXPERIMENTS.md): absolute times are *virtual* and
/// calibrated so Mandelbrot lands in the paper's range (~600 worker-seconds
/// of total work => ~19-60 s on 2 nodes x 16). PSIA keeps the paper's
/// *granularity* (sub-millisecond iterations, which drive the SS lock
/// contention) rather than its absolute duration; its times are therefore
/// smaller than the paper's 233-600 s but all ratios are preserved.

#include <string>

#include "sim/simulator.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"

namespace hdls::bench {

/// Node counts of the paper's x-axes.
inline constexpr int kNodeCounts[] = {2, 4, 8, 16};
/// Ranks (or threads) per node on miniHPC's Xeon partition.
inline constexpr int kWorkersPerNode = 16;

/// Mandelbrot trace: 1024x1024 escape-time image, max_iter 256, viewport
/// chosen so the expensive interior band sits past the midpoint of the
/// (row-major) iteration space — matching the paper's observation that its
/// time-consuming iterations are *not* at the beginning of the loop
/// (Section 2, FAC2 discussion). `dim` scales the image (default 1024).
[[nodiscard]] sim::WorkloadTrace mandelbrot_paper_trace(int dim = 1024);

/// PSIA trace: one spin image per oriented point of a 2^20-point synthetic
/// cloud; cost = base + k * |neighbourhood|. Moderate, spatially-correlated
/// imbalance (CoV ~0.25 vs Mandelbrot's ~2.0). `points` scales the cloud.
[[nodiscard]] sim::WorkloadTrace psia_paper_trace(std::int64_t points = 1 << 20);

/// Registers the standard bench options (--csv, --scale, --rpn and every
/// cost-model knob) on a parser.
void add_common_options(util::ArgParser& cli);

/// Builds the cluster spec for `nodes` from parsed options.
[[nodiscard]] sim::ClusterSpec cluster_from_options(const util::ArgParser& cli, int nodes);

/// Applies --scale to the two workloads: returns the Mandelbrot dimension
/// and PSIA point count to use.
[[nodiscard]] int scaled_mandelbrot_dim(const util::ArgParser& cli);
[[nodiscard]] std::int64_t scaled_psia_points(const util::ArgParser& cli);

/// Acquisition-latency aggregation over a recorded trace: the successful
/// upper-level GlobalAcquire/Steal epochs (b > 0) and, when prefetching
/// was on, the acquisition seconds their Prefetch events prefetched ahead
/// of demand. `effective_mean_latency` subtracts that time — meaningful
/// for *simulator* traces, whose overlap pricing genuinely takes it off
/// the critical path (a thread-backed real-executor trace repositions the
/// work instead; see trace::TraceAnalysis::prefetch_hidden_seconds).
/// Shared by the ablation benches (each used to hand-roll this mean); the
/// math lives on util::OnlineStats.
struct AcquireStats {
    double mean_latency = 0.0;            ///< mean successful acquire epoch (s)
    double effective_mean_latency = 0.0;  ///< mean after prefetch-hidden time (s)
    double hidden_seconds = 0.0;          ///< total acquisition time prefetch absorbed
    std::int64_t acquires = 0;
    std::int64_t steals = 0;
    std::int64_t prefetch_hits = 0;
    std::int64_t prefetch_misses = 0;
};
[[nodiscard]] AcquireStats acquire_stats(const trace::Trace& trace);

}  // namespace hdls::bench
