/// \file bench_ablation_shard_contention.cpp
/// Ablation: centralized vs. sharded level-1 queue as the node count grows.
///
/// The centralized backends funnel every acquisition through one rank-0
/// window: two fabric RMA ops serialized at a single FCFS server, so the
/// per-acquire latency grows with the node count (the coordinator hotspot).
/// The sharded backend keeps acquisitions on the node-local shard window
/// and only touches the fabric to steal. This bench sweeps 4 -> 64
/// simulated nodes under an acquisition-heavy schedule and reports, per
/// backend: mean per-acquire latency (from the recorded GlobalAcquire /
/// Steal events), parallel time, finish-time CoV and the steal count.
///
/// Expected: comparable latency at 4 nodes; an order-of-magnitude sharded
/// advantage by 16+, with steals keeping the finish CoV in check.

#include <iostream>

#include "common/json_report.hpp"
#include "common/workloads.hpp"
#include "trace/trace.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace hdls;
    util::ArgParser cli("bench_ablation_shard_contention",
                        "Centralized vs. sharded inter-node queue under growing node counts");
    bench::add_common_options(cli);
    bench::add_json_option(cli);
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }

    const sim::WorkloadTrace trace =
        bench::psia_paper_trace(bench::scaled_psia_points(cli) / 4);

    bench::JsonReport json("bench_ablation_shard_contention");
    json.add_param("scale", cli.get_double("scale"));
    json.add_param("rpn", cli.get_int("rpn"));
    json.add_param("schedule", "SS+STATIC");
    json.add_param("min_chunk", std::int64_t{8});

    util::TextTable table({"nodes", "backend", "acquire (us)", "T (s)", "finish CoV",
                           "acquires", "steals"});
    for (const int nodes : {4, 8, 16, 32, 64}) {
        for (const dls::InterBackend backend :
             {dls::InterBackend::Centralized, dls::InterBackend::Sharded}) {
            sim::SimConfig cfg;
            cfg.inter = dls::Technique::SS;  // one acquisition per chunk: max pressure
            cfg.intra = dls::Technique::Static;
            cfg.min_chunk = 8;
            cfg.inter_backend = backend;
            cfg.trace = true;
            const auto r = simulate(sim::ExecModel::MpiMpi,
                                    bench::cluster_from_options(cli, nodes), cfg, trace);
            const bench::AcquireStats acq = bench::acquire_stats(*r.trace);
            table.add_row({std::to_string(nodes),
                           std::string(dls::inter_backend_name(backend)),
                           util::format_double(acq.mean_latency * 1e6, 3),
                           util::format_double(r.parallel_time, 3),
                           util::format_double(r.finish_cov(), 4),
                           std::to_string(acq.acquires), std::to_string(acq.steals)});
            json.point()
                .label("nodes", static_cast<std::int64_t>(nodes))
                .label("backend", std::string(dls::inter_backend_name(backend)))
                .sample("acquire_us", acq.mean_latency * 1e6)
                .sample("parallel_s", r.parallel_time)
                .sample("finish_cov", r.finish_cov())
                .sample("steals", static_cast<double>(acq.steals));
        }
    }
    std::cout << "Shard-contention ablation (PSIA workload, SS+STATIC, min_chunk=8, "
              << cli.get_int("rpn") << " ranks/node):\n";
    if (cli.get_flag("csv")) {
        table.print_csv(std::cout);
    } else {
        table.print(std::cout);
    }
    std::cout << "\nExpected: the centralized per-acquire latency climbs with the node\n"
                 "count (one rank-0 server serializes the whole cluster) while the\n"
                 "sharded backend stays at the node-local window cost, stealing only\n"
                 "when a shard runs dry.\n";
    try {
        bench::maybe_write_json(cli, json);
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
    return 0;
}
