/// \file bench_ablation_shard_contention.cpp
/// Ablation: centralized vs. sharded level-1 queue as the node count grows.
///
/// The centralized backends funnel every acquisition through one rank-0
/// window: two fabric RMA ops serialized at a single FCFS server, so the
/// per-acquire latency grows with the node count (the coordinator hotspot).
/// The sharded backend keeps acquisitions on the node-local shard window
/// and only touches the fabric to steal. This bench sweeps 4 -> 64
/// simulated nodes under an acquisition-heavy schedule and reports, per
/// backend: mean per-acquire latency (from the recorded GlobalAcquire /
/// Steal events), parallel time, finish-time CoV and the steal count.
///
/// Expected: comparable latency at 4 nodes; an order-of-magnitude sharded
/// advantage by 16+, with steals keeping the finish CoV in check.

#include <chrono>
#include <iostream>

#include "common/json_report.hpp"
#include "common/workloads.hpp"
#include "core/runner.hpp"
#include "metrics/metrics.hpp"
#include "trace/trace.hpp"
#include "util/table.hpp"

namespace {

/// Wall-clock cost of the exact instrument sequence a level-1 acquire
/// executes — the window-lock counter, the acquire counter, the latency
/// histogram observation and the refill counter — measured on a private
/// registry so the probe does not show up in the process-wide export.
/// Returns nanoseconds per acquire-worth of instrumentation.
[[nodiscard]] double measure_acquire_instrument_ns() {
    using namespace hdls;
    metrics::MetricsRegistry reg;
    metrics::Counter& locks = reg.counter("probe_locks_total", "probe");
    metrics::Counter& acquires = reg.counter("probe_acquires_total", "probe");
    metrics::Counter& refills = reg.counter("probe_refills_total", "probe");
    metrics::Histogram& latency = reg.histogram("probe_latency_ns", "probe");
    constexpr int kReps = 1 << 20;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) {
        locks.inc();
        acquires.inc();
        latency.observe(static_cast<std::uint64_t>(300 + (i & 0xff)));
        refills.inc();
    }
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() / kReps;
}

/// Real-executor section: run the MPI+MPI executor on an acquisition-heavy
/// schedule to exercise every instrumented layer, then report the measured
/// per-acquire instrumentation cost next to the bench's per-acquire
/// latencies. CI's perf-smoke job gates metrics_overhead_us < 2% of the
/// cheapest sharded acquire_us in the table above — i.e. always-on metrics
/// must stay invisible even against the cheapest real acquisition the
/// bench models, let alone the centralized hotspot it studies.
void run_overhead_section(hdls::bench::JsonReport& json, std::ostream& os) {
    using namespace hdls;
    const core::ClusterShape shape{4, 4};
    core::HierConfig cfg;
    cfg.inter = dls::Technique::SS;  // one acquisition per chunk: max pressure
    cfg.intra = dls::Technique::Static;
    cfg.min_chunk = 8;
    const std::int64_t n = 1 << 18;

    const metrics::Snapshot before = metrics::registry().snapshot();
    const auto report = core::run_hierarchical(
        shape, core::Approach::MpiMpi, cfg, n,
        [](std::int64_t, std::int64_t) { /* scheduling-bound on purpose */ });
    const metrics::Snapshot delta = metrics::registry().snapshot().delta_since(before);
    (void)report;

    const double acquires =
        static_cast<double>(delta.counter_total("hdls_sched_acquires_total") +
                            delta.counter_total("hdls_sched_steals_total"));
    const std::uint64_t lat_count = delta.histogram_count("hdls_sched_acquire_latency_ns");
    if (acquires <= 0.0 || lat_count == 0) {
        os << "\nmetrics-overhead section skipped: run produced no acquires\n";
        return;
    }
    const double instr_ns = measure_acquire_instrument_ns();
    const double overhead_us = instr_ns / 1000.0;
    // The real in-process acquire latency, for context (a thread-backed
    // window is far cheaper than the fabric RMA the table models).
    const double real_acquire_us =
        static_cast<double>(delta.histogram_sum("hdls_sched_acquire_latency_ns")) /
        static_cast<double>(lat_count) / 1000.0;

    os << "\nmetrics overhead (real MPI+MPI executor, " << shape.nodes << "x"
       << shape.workers_per_node << " workers, SS+STATIC):\n"
       << "  instrumentation per acquire: " << util::format_double(instr_ns, 1)
       << " ns (4 counters + 1 histogram observation)"
       << "  level-1 acquires: " << util::format_double(acquires, 0)
       << "  in-process acquire latency: " << util::format_double(real_acquire_us, 3)
       << " us\n";
    json.point()
        .label("section", "metrics_overhead")
        .sample("metrics_overhead_us", overhead_us)
        .sample("real_acquire_us", real_acquire_us)
        .sample("acquires", acquires);
}

}  // namespace

int main(int argc, char** argv) {
    using namespace hdls;
    util::ArgParser cli("bench_ablation_shard_contention",
                        "Centralized vs. sharded inter-node queue under growing node counts");
    bench::add_common_options(cli);
    bench::add_json_option(cli);
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }

    const sim::WorkloadTrace trace =
        bench::psia_paper_trace(bench::scaled_psia_points(cli) / 4);

    bench::JsonReport json("bench_ablation_shard_contention");
    json.add_param("scale", cli.get_double("scale"));
    json.add_param("rpn", cli.get_int("rpn"));
    json.add_param("schedule", "SS+STATIC");
    json.add_param("min_chunk", std::int64_t{8});

    util::TextTable table({"nodes", "backend", "acquire (us)", "T (s)", "finish CoV",
                           "acquires", "steals"});
    for (const int nodes : {4, 8, 16, 32, 64}) {
        for (const dls::InterBackend backend :
             {dls::InterBackend::Centralized, dls::InterBackend::Sharded}) {
            sim::SimConfig cfg;
            cfg.inter = dls::Technique::SS;  // one acquisition per chunk: max pressure
            cfg.intra = dls::Technique::Static;
            cfg.min_chunk = 8;
            cfg.inter_backend = backend;
            cfg.trace = true;
            const auto r = simulate(sim::ExecModel::MpiMpi,
                                    bench::cluster_from_options(cli, nodes), cfg, trace);
            const bench::AcquireStats acq = bench::acquire_stats(*r.trace);
            table.add_row({std::to_string(nodes),
                           std::string(dls::inter_backend_name(backend)),
                           util::format_double(acq.mean_latency * 1e6, 3),
                           util::format_double(r.parallel_time, 3),
                           util::format_double(r.finish_cov(), 4),
                           std::to_string(acq.acquires), std::to_string(acq.steals)});
            json.point()
                .label("nodes", static_cast<std::int64_t>(nodes))
                .label("backend", std::string(dls::inter_backend_name(backend)))
                .sample("acquire_us", acq.mean_latency * 1e6)
                .sample("parallel_s", r.parallel_time)
                .sample("finish_cov", r.finish_cov())
                .sample("steals", static_cast<double>(acq.steals));
        }
    }
    std::cout << "Shard-contention ablation (PSIA workload, SS+STATIC, min_chunk=8, "
              << cli.get_int("rpn") << " ranks/node):\n";
    if (cli.get_flag("csv")) {
        table.print_csv(std::cout);
    } else {
        table.print(std::cout);
    }
    std::cout << "\nExpected: the centralized per-acquire latency climbs with the node\n"
                 "count (one rank-0 server serializes the whole cluster) while the\n"
                 "sharded backend stays at the node-local window cost, stealing only\n"
                 "when a shard runs dry.\n";
    run_overhead_section(json, std::cout);
    try {
        bench::maybe_write_json(cli, json);
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
    return 0;
}
