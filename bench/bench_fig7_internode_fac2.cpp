/// \file bench_fig7_internode_fac2.cpp
/// Regenerates Figure 7: FAC2 at the inter-node level; same qualitative
/// pattern as Figures 5/6, with the SS penalty relatively most visible for
/// PSIA (its low intrinsic imbalance leaves the scheduling overhead as the
/// dominant effect).

#include "common/figure.hpp"

int main(int argc, char** argv) {
    return hdls::bench::run_figure_bench(7, hdls::dls::Technique::FAC2, argc, argv);
}
