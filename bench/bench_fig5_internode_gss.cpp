/// \file bench_fig5_internode_gss.cpp
/// Regenerates Figure 5: GSS at the inter-node level. Headline result of
/// the paper: GSS+STATIC favours MPI+MPI strongly at small node counts
/// (19.6 s vs 61.5 s at 2 nodes for Mandelbrot in the paper), the gap
/// narrowing with node count; GSS+SS favours MPI+OpenMP.

#include "common/figure.hpp"

int main(int argc, char** argv) {
    return hdls::bench::run_figure_bench(5, hdls::dls::Technique::GSS, argc, argv);
}
