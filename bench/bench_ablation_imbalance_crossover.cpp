/// \file bench_ablation_imbalance_crossover.cpp
/// Ablation 1: at what workload imbalance does MPI+MPI overtake MPI+OpenMP
/// for X+STATIC? Sweeps the CoV of a spatially-correlated (sorted-runs)
/// gaussian workload. This quantifies the paper's explanation for why the
/// PSIA gaps are smaller than Mandelbrot's ("the decreased load imbalance
/// in PSIA").
///
/// Ablation 2: adaptive vs non-adaptive inter-node scheduling under an
/// *induced node slowdown* (one node at half speed). The step-indexed
/// techniques are blind to node heterogeneity; WF knows it statically and
/// AWF-B/C/D/E discover it from the RMA feedback region. Finish-time CoV
/// is the imbalance metric — adaptive techniques should beat FAC2.

#include <algorithm>
#include <iostream>
#include <vector>

#include "apps/synthetic.hpp"
#include "common/json_report.hpp"
#include "common/workloads.hpp"
#include "util/table.hpp"

namespace {

/// Gaussian costs rearranged into descending blocks: preserves the
/// marginal distribution (and CoV) while giving the trace the spatial
/// correlation static slices are sensitive to.
hdls::sim::WorkloadTrace correlated_trace(std::size_t n, double cov) {
    hdls::apps::WorkloadSpec spec;
    spec.kind = hdls::apps::WorkloadKind::Gaussian;
    spec.iterations = n;
    spec.mean_seconds = 5e-4;
    spec.cov = cov;
    auto costs = hdls::apps::make_workload(spec);
    std::sort(costs.begin(), costs.end(), std::greater<>());
    // Rotate so the expensive region is mid-loop, as in the paper's apps.
    std::rotate(costs.begin(), costs.begin() + static_cast<std::ptrdiff_t>(n / 3), costs.end());
    return hdls::sim::WorkloadTrace(std::move(costs));
}

}  // namespace

int main(int argc, char** argv) {
    using namespace hdls;
    util::ArgParser cli("bench_ablation_imbalance_crossover",
                        "GSS+STATIC: MPI+MPI vs MPI+OpenMP as a function of workload CoV");
    bench::add_common_options(cli);
    bench::add_json_option(cli);
    cli.add_int("nodes", 4, "node count");
    cli.add_int("iterations", 200000, "loop size");
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
    const int nodes = static_cast<int>(cli.get_int("nodes"));
    const auto n = static_cast<std::size_t>(cli.get_int("iterations"));

    sim::SimConfig cfg;
    cfg.inter = dls::Technique::GSS;
    cfg.intra = dls::Technique::Static;

    bench::JsonReport json("bench_ablation_imbalance_crossover");
    json.add_param("nodes", static_cast<std::int64_t>(nodes));
    json.add_param("iterations", static_cast<std::int64_t>(n));
    json.add_param("rpn", cli.get_int("rpn"));

    util::TextTable table(
        {"workload CoV", "MPI+OpenMP (s)", "MPI+MPI (s)", "ratio OpenMP/MPI+MPI"});
    for (const double cov : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0}) {
        const auto trace = correlated_trace(n, cov);
        const auto cluster = bench::cluster_from_options(cli, nodes);
        const auto hy = simulate(sim::ExecModel::MpiOpenMp, cluster, cfg, trace);
        const auto mm = simulate(sim::ExecModel::MpiMpi, cluster, cfg, trace);
        table.add_row({util::format_double(cov, 2), util::format_double(hy.parallel_time, 3),
                       util::format_double(mm.parallel_time, 3),
                       util::format_double(hy.parallel_time / mm.parallel_time, 3)});
        json.point()
            .label("sweep", "workload_cov")
            .label("cov", util::format_double(cov, 2))
            .sample("openmp_s", hy.parallel_time)
            .sample("mpimpi_s", mm.parallel_time);
    }
    std::cout << "Imbalance crossover (GSS+STATIC, " << nodes << " nodes x " << cli.get_int("rpn")
              << ", correlated gaussian workload):\n";
    if (cli.get_flag("csv")) {
        table.print_csv(std::cout);
    } else {
        table.print(std::cout);
    }
    std::cout << "\nExpected: at CoV ~0 the approaches tie (nothing to wait for at the\n"
                 "barrier); the MPI+OpenMP penalty grows with CoV.\n";

    // ---- Ablation 2: adaptive inter-node scheduling, one 2x-slowed node --
    auto slowed = bench::cluster_from_options(cli, nodes);
    slowed.node_speed.assign(static_cast<std::size_t>(nodes), 1.0);
    slowed.node_speed[0] = 0.5;  // node 0 executes everything twice as slowly

    const auto heterogeneous = correlated_trace(n, 0.5);
    util::TextTable adaptive_table({"inter technique", "MPI+MPI (s)", "finish CoV"});
    using hdls::dls::Technique;
    for (const Technique inter :
         {Technique::FAC2, Technique::FAC, Technique::WF, Technique::AWFB, Technique::AWFC,
          Technique::AWFD, Technique::AWFE}) {
        sim::SimConfig acfg;
        acfg.inter = inter;
        acfg.intra = dls::Technique::Static;
        if (inter == Technique::WF) {
            // WF gets the true speeds; the AWF variants must discover them.
            acfg.inter_weights = std::vector<double>(slowed.node_speed.begin(),
                                                     slowed.node_speed.end());
        }
        const auto r = simulate(sim::ExecModel::MpiMpi, slowed, acfg, heterogeneous);
        adaptive_table.add_row({std::string(dls::technique_name(inter)),
                                util::format_double(r.parallel_time, 3),
                                util::format_double(r.finish_cov(), 4)});
        json.point()
            .label("sweep", "adaptive_slow_node")
            .label("inter", std::string(dls::technique_name(inter)))
            .sample("parallel_s", r.parallel_time)
            .sample("finish_cov", r.finish_cov());
    }
    std::cout << "\nAdaptive crossover (X+STATIC, " << nodes << " nodes x "
              << cli.get_int("rpn") << ", node 0 at half speed):\n";
    if (cli.get_flag("csv")) {
        adaptive_table.print_csv(std::cout);
    } else {
        adaptive_table.print(std::cout);
    }
    std::cout << "\nExpected: FAC2 schedules the slow node as if it were fast and its\n"
                 "finish-time CoV shows the straggler; WF (exact weights) and the\n"
                 "AWF variants (measured rates) level the finish times.\n";
    try {
        bench::maybe_write_json(cli, json);
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
    return 0;
}
