/// \file bench_table1_schedule_mapping.cpp
/// Regenerates Table 1: the mapping between DLS techniques and the OpenMP
/// `schedule` clause — and *verifies* it, by comparing the chunk sequence
/// produced by the ompsim worksharing runtime against the DLS library's
/// master-side scheduler for each mapped technique.

#include <algorithm>
#include <iostream>
#include <mutex>
#include <vector>

#include "common/json_report.hpp"
#include "dls/scheduler.hpp"
#include "ompsim/team.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using hdls::dls::Technique;
using hdls::ompsim::ForOptions;
using hdls::ompsim::ThreadTeam;

/// Chunk-size sequence of one ompsim worksharing run, ordered by start.
std::vector<std::int64_t> ompsim_chunk_sizes(int threads, std::int64_t n,
                                             const ForOptions& opts) {
    ThreadTeam team(threads);
    std::mutex mutex;
    std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
    team.parallel_for(0, n, opts, [&](std::int64_t b, std::int64_t e, int) {
        const std::lock_guard<std::mutex> lock(mutex);
        chunks.emplace_back(b, e - b);
    });
    std::sort(chunks.begin(), chunks.end());
    std::vector<std::int64_t> sizes;
    sizes.reserve(chunks.size());
    for (const auto& [start, size] : chunks) {
        sizes.push_back(size);
    }
    return sizes;
}

std::vector<std::int64_t> dls_chunk_sizes(Technique t, std::int64_t n, int workers) {
    hdls::dls::LoopParams p;
    p.total_iterations = n;
    p.workers = workers;
    std::vector<std::int64_t> sizes;
    for (const auto& c : hdls::dls::enumerate_chunks(t, p)) {
        sizes.push_back(c.size);
    }
    return sizes;
}

}  // namespace

int main(int argc, char** argv) {
    hdls::util::ArgParser cli("bench_table1",
                              "Reproduces Table 1: DLS <-> OpenMP schedule clause mapping, "
                              "verified by chunk-sequence comparison");
    cli.add_flag("csv", "emit CSV");
    hdls::bench::add_json_option(cli);
    cli.add_int("n", 10000, "loop size used for the verification runs");
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
    const auto n = cli.get_int("n");

    hdls::util::TextTable table(
        {"DLS technique", "OpenMP schedule clause", "sequence check (P=4,8,16)"});

    struct Row {
        Technique tech;
        std::string clause;
        ForOptions opts;
        bool expressible;
    };
    const std::vector<Row> rows = {
        {Technique::Static, "schedule(static)", {hdls::ompsim::Schedule::Static, 0, false}, true},
        {Technique::SS, "schedule(dynamic,1)", {hdls::ompsim::Schedule::Dynamic, 1, false}, true},
        {Technique::GSS, "schedule(guided,1)", {hdls::ompsim::Schedule::Guided, 1, false}, true},
        {Technique::TSS, "- (extension: schedule tss)", {}, false},
        {Technique::FAC2, "- (extension: schedule fac2)", {}, false},
    };

    hdls::bench::JsonReport json("bench_table1");
    json.add_param("n", n);

    bool all_ok = true;
    for (const auto& row : rows) {
        std::string check;
        bool ok = true;
        if (!row.expressible) {
            check = "not expressible in OpenMP 5";
        } else {
            for (const int p : {4, 8, 16}) {
                // The guided/dynamic cursor rules make the ordered chunk
                // sizes deterministic regardless of thread interleaving, so
                // exact equality is the correct check.
                ok = ok && (ompsim_chunk_sizes(p, n, row.opts) ==
                            dls_chunk_sizes(row.tech, n, p));
            }
            all_ok = all_ok && ok;
            check = ok ? "exact match" : "MISMATCH";
        }
        table.add_row({std::string(hdls::dls::technique_name(row.tech)), row.clause, check});
        json.point()
            .label("technique", std::string(hdls::dls::technique_name(row.tech)))
            .label("clause", row.clause)
            .sample("expressible", row.expressible ? 1.0 : 0.0)
            .sample("match", row.expressible && ok ? 1.0 : 0.0);
    }

    std::cout << "Table 1 reproduction (verification loop: N=" << n << ")\n";
    if (cli.get_flag("csv")) {
        table.print_csv(std::cout);
    } else {
        table.print(std::cout, hdls::util::Align::Left);
    }
    std::cout << (all_ok ? "\nAll mapped schedules verified.\n"
                         : "\nERROR: schedule mapping mismatch!\n");
    try {
        hdls::bench::maybe_write_json(cli, json);
    } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
    return all_ok ? 0 : 1;
}
